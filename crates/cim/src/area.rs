//! Hardware area model behind the paper's Fig. 9(c) comparison.
//!
//! The paper extracts wiring parasitics with DESTINY \[27\] and reports
//! *relative* hardware size savings of HyCiM (inequality filter +
//! 7-bit crossbar) over D-QUBO (16–25-bit crossbar alone) of
//! 88.06–99.96%. Relative savings are governed by cell counts and the
//! per-block peripheral overheads, which this closed-form model
//! captures at 28 nm (the paper's HKMG node); see DESIGN.md §2 for the
//! substitution note.

use std::fmt;

/// Area model constants, expressed in units of F² (F = feature size)
/// so the relative comparison is node-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// Feature size in nanometers (paper: 28 nm HKMG).
    pub feature_nm: f64,
    /// 1FeFET1R cell footprint in F² (compact three-terminal cell).
    pub cell_f2: f64,
    /// Per-column ADC footprint in F² (8-bit SAR-class).
    pub adc_f2: f64,
    /// 2-stage voltage comparator footprint in F².
    pub comparator_f2: f64,
    /// Per-row/column driver + decoder footprint in F².
    pub driver_f2: f64,
}

impl AreaModel {
    /// Paper-node defaults at 28 nm.
    pub fn paper() -> Self {
        Self {
            feature_nm: 28.0,
            cell_f2: 40.0,
            adc_f2: 60_000.0,
            comparator_f2: 8_000.0,
            driver_f2: 400.0,
        }
    }

    /// Area of one crossbar storing an `n × n` matrix at `bits`-bit
    /// quantization (two sign planes, per-column ADCs muxed 4:1,
    /// row/column drivers), in F².
    pub fn crossbar_f2(&self, n: usize, bits: u32) -> f64 {
        let cells = 2.0 * (n as f64) * (n as f64) * f64::from(bits) * self.cell_f2;
        let adcs = (n as f64 / 4.0).ceil() * self.adc_f2;
        let drivers = 2.0 * (n as f64) * self.driver_f2;
        cells + adcs + drivers
    }

    /// Area of the inequality filter (working + replica `rows × n`
    /// arrays + comparator + drivers), in F².
    pub fn filter_f2(&self, rows: usize, n: usize) -> f64 {
        let cells = 2.0 * (rows as f64) * (n as f64) * self.cell_f2;
        let drivers = (n as f64) * self.driver_f2;
        cells + drivers + self.comparator_f2
    }

    /// Total HyCiM area: inequality filter + crossbar (paper Fig. 9(c)
    /// counts both).
    pub fn hycim_f2(&self, n: usize, bits: u32, filter_rows: usize) -> f64 {
        self.crossbar_f2(n, bits) + self.filter_f2(filter_rows, n)
    }

    /// Converts F² to µm² at the configured node.
    pub fn f2_to_um2(&self, f2: f64) -> f64 {
        let f_um = self.feature_nm * 1e-3;
        f2 * f_um * f_um
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::paper()
    }
}

impl fmt::Display for AreaModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AreaModel({} nm, cell {} F²)",
            self.feature_nm, self.cell_f2
        )
    }
}

/// Hardware-size comparison of HyCiM vs D-QUBO for one problem
/// instance (one row of paper Fig. 9).
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareComparison {
    /// HyCiM QUBO dimension (number of items).
    pub hycim_dim: usize,
    /// HyCiM crossbar bits (`⌈log₂(Q_ij)MAX⌉`).
    pub hycim_bits: u32,
    /// D-QUBO dimension (`n + C` for the one-hot encoding).
    pub dqubo_dim: usize,
    /// D-QUBO crossbar bits.
    pub dqubo_bits: u32,
    /// HyCiM total area (F²), filter included.
    pub hycim_area_f2: f64,
    /// D-QUBO crossbar area (F²).
    pub dqubo_area_f2: f64,
}

impl HardwareComparison {
    /// Builds the comparison with the paper's 16-row filter.
    pub fn compute(
        model: &AreaModel,
        hycim_dim: usize,
        hycim_bits: u32,
        dqubo_dim: usize,
        dqubo_bits: u32,
    ) -> Self {
        Self {
            hycim_dim,
            hycim_bits,
            dqubo_dim,
            dqubo_bits,
            hycim_area_f2: model.hycim_f2(hycim_dim, hycim_bits, 16),
            dqubo_area_f2: model.crossbar_f2(dqubo_dim, dqubo_bits),
        }
    }

    /// Hardware size saving `1 − area_HyCiM / area_DQUBO`, in percent
    /// (paper Fig. 9(c): 88.06–99.96%).
    pub fn saving_percent(&self) -> f64 {
        (1.0 - self.hycim_area_f2 / self.dqubo_area_f2) * 100.0
    }

    /// Quantization-bit reduction `1 − bits_HyCiM / bits_DQUBO`, in
    /// percent (paper: 56–72%).
    pub fn bit_reduction_percent(&self) -> f64 {
        (1.0 - f64::from(self.hycim_bits) / f64::from(self.dqubo_bits)) * 100.0
    }

    /// Log₂ of the search-space reduction factor
    /// `2^dqubo_dim / 2^hycim_dim` (paper: 2¹⁰⁰..2²⁵³⁶ eliminated).
    pub fn search_space_reduction_log2(&self) -> usize {
        self.dqubo_dim - self.hycim_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_band_low_end() {
        // Smallest D-QUBO case: n=200, 16 bits vs HyCiM n=100, 7 bits.
        let cmp = HardwareComparison::compute(&AreaModel::paper(), 100, 7, 200, 16);
        let s = cmp.saving_percent();
        assert!(
            (85.0..92.0).contains(&s),
            "low-end saving {s:.2}% outside paper band (≈88.06%)"
        );
        assert_eq!(cmp.search_space_reduction_log2(), 100);
    }

    #[test]
    fn paper_band_high_end() {
        // Largest D-QUBO case: n=2636, 25 bits.
        let cmp = HardwareComparison::compute(&AreaModel::paper(), 100, 7, 2636, 25);
        let s = cmp.saving_percent();
        assert!(s > 99.9, "high-end saving {s:.2}% below paper's 99.96%");
        assert_eq!(cmp.search_space_reduction_log2(), 2536);
    }

    #[test]
    fn bit_reduction_band() {
        // Paper: 56–72% quantization bit reduction.
        let low = HardwareComparison::compute(&AreaModel::paper(), 100, 7, 200, 16);
        let high = HardwareComparison::compute(&AreaModel::paper(), 100, 7, 2636, 25);
        assert!((low.bit_reduction_percent() - 56.25).abs() < 0.1);
        assert!((high.bit_reduction_percent() - 72.0).abs() < 0.1);
    }

    #[test]
    fn crossbar_area_scales_with_bits_and_dim() {
        let m = AreaModel::paper();
        // Cell area doubles with bits; ADC/driver periphery does not,
        // so the total grows by a bit less than 2×.
        assert!(m.crossbar_f2(100, 14) > 1.7 * m.crossbar_f2(100, 7));
        assert!(m.crossbar_f2(200, 7) > 3.0 * m.crossbar_f2(100, 7));
    }

    #[test]
    fn filter_is_small_relative_to_crossbar() {
        // The filter's 2×16×100 cells are tiny next to a 100²×7-bit
        // crossbar — the premise that adding the filter still saves.
        let m = AreaModel::paper();
        assert!(m.filter_f2(16, 100) < 0.1 * m.crossbar_f2(100, 7));
    }

    #[test]
    fn unit_conversion() {
        let m = AreaModel::paper();
        // 1 F² at 28 nm = 784e-6 µm².
        assert!((m.f2_to_um2(1.0) - 784e-6).abs() < 1e-9);
    }
}
