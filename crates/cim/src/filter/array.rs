use std::fmt;

use hycim_fefet::{MultiLevelSpec, StaircasePulse, VariationModel};
use hycim_qubo::Assignment;
use rand::Rng;

use crate::filter::FilterCell;
use crate::{CimError, Fidelity, Matchline, MatchlineConfig};

/// An `m × n` matchline array of filter cells (paper Fig. 5(a)).
///
/// Item weight `wᵢ` is decomposed into `m` sub-weights
/// `wᵢ = Σⱼ wᵢⱼ, wᵢⱼ ∈ {0..=4}` stored down column `i`; all matchlines
/// are interconnected, so after a 4-phase staircase evaluation the
/// shared ML voltage is `VDD − ΔV_unit · Σᵢ wᵢxᵢ` (paper Eq. 9).
///
/// # Example
///
/// ```
/// use hycim_cim::filter::FilterArray;
/// use hycim_cim::filter::FilterConfig;
/// use hycim_qubo::Assignment;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), hycim_cim::CimError> {
/// let mut rng = StdRng::seed_from_u64(1);
/// let array = FilterArray::program(&[4, 7, 2], &FilterConfig::default(), &mut rng)?;
/// let ml = array.evaluate(&Assignment::from_bits([true, false, true]), &mut rng);
/// // 6 weight units discharged from a 2 V precharge.
/// assert!(ml < 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FilterArray {
    /// Cells in column-major order: `cells[col][row]`.
    cells: Vec<Vec<FilterCell>>,
    /// The weights actually stored (after decomposition).
    weights: Vec<u64>,
    rows: usize,
    staircase: StaircasePulse,
    ml_config: MatchlineConfig,
    fidelity: Fidelity,
    variation: VariationModel,
    /// Fraction of the nominal clamp current an ON cell actually
    /// conducts: the 1FeFET1R series blend gives
    /// `I = I_clamp · I_on / (I_on + I_clamp)`, ≈ 0.98 at the paper's
    /// operating point. The fast path scales its unit drops by this so
    /// both fidelities share the same mean ML.
    effective_unit_fraction: f64,
}

/// Shared construction parameters for filter arrays (re-exported from
/// [`crate::filter`]; see [`crate::filter::FilterConfig`]).
pub(crate) struct ArrayParams<'a> {
    pub rows: usize,
    pub spec: &'a MultiLevelSpec,
    pub ml_config: &'a MatchlineConfig,
    pub variation: &'a VariationModel,
    pub fidelity: Fidelity,
    pub phase_time_ns: f64,
}

impl FilterArray {
    /// Programs an array holding `weights`, one item per column, using
    /// the filter configuration (16 rows of 5-level cells by default →
    /// per-item weights up to 64, the paper's Sec 4.1 setting).
    ///
    /// # Errors
    ///
    /// Returns [`CimError::WeightTooLarge`] if any weight exceeds
    /// `rows × max_level`, or [`CimError::EmptyProblem`] for an empty
    /// weight list.
    pub fn program<R: Rng + ?Sized>(
        weights: &[u64],
        config: &crate::filter::FilterConfig,
        rng: &mut R,
    ) -> Result<Self, CimError> {
        Self::program_with(
            weights,
            &ArrayParams {
                rows: config.rows,
                spec: &config.spec,
                ml_config: &config.matchline,
                variation: &config.variation,
                fidelity: config.fidelity,
                phase_time_ns: config.matchline.phase_time * 1e9,
            },
            rng,
        )
    }

    pub(crate) fn program_with<R: Rng + ?Sized>(
        weights: &[u64],
        params: &ArrayParams<'_>,
        rng: &mut R,
    ) -> Result<Self, CimError> {
        if weights.is_empty() {
            return Err(CimError::EmptyProblem);
        }
        let max_level = u64::from(params.spec.max_level());
        let limit = params.rows as u64 * max_level;
        let mut cells = Vec::with_capacity(weights.len());
        for (item, &w) in weights.iter().enumerate() {
            if w > limit {
                return Err(CimError::WeightTooLarge {
                    item,
                    weight: w,
                    limit,
                });
            }
            let mut column = Vec::with_capacity(params.rows);
            for sub in decompose_weight(w, params.rows, params.spec.max_level()) {
                let mut cell = FilterCell::sample(params.spec, params.variation, rng);
                cell.store(sub);
                column.push(cell);
            }
            cells.push(column);
        }
        let i_on = params.spec.i_on();
        let effective_unit_fraction = i_on / (i_on + params.ml_config.cell_current);
        Ok(Self {
            cells,
            weights: weights.to_vec(),
            rows: params.rows,
            staircase: StaircasePulse::for_spec(params.spec, params.phase_time_ns),
            ml_config: params.ml_config.clone(),
            fidelity: params.fidelity,
            variation: params.variation.clone(),
            effective_unit_fraction,
        })
    }

    /// Number of item columns `n`.
    pub fn num_columns(&self) -> usize {
        self.cells.len()
    }

    /// Number of cell rows `m`.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// The stored item weights.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Total weight units `Σ wᵢxᵢ` selected by a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_columns()`.
    pub fn selected_units(&self, x: &Assignment) -> u64 {
        assert_eq!(x.len(), self.num_columns(), "input length mismatch");
        self.weights
            .iter()
            .zip(x.iter())
            .filter(|(_, b)| *b)
            .map(|(w, _)| *w)
            .sum()
    }

    /// Runs one 4-phase evaluation and returns the final ML voltage.
    ///
    /// Fidelity [`Fidelity::DeviceAccurate`] integrates every cell's
    /// current per phase; [`Fidelity::Fast`] applies the analytically
    /// equivalent aggregate drop with √N-scaled noise.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_columns()`.
    pub fn evaluate<R: Rng + ?Sized>(&self, x: &Assignment, rng: &mut R) -> f64 {
        match self.fidelity {
            Fidelity::DeviceAccurate => self.evaluate_device(x, rng),
            Fidelity::Fast => self.evaluate_fast(self.selected_units(x), rng),
        }
    }

    fn evaluate_device<R: Rng + ?Sized>(&self, x: &Assignment, rng: &mut R) -> f64 {
        assert_eq!(x.len(), self.num_columns(), "input length mismatch");
        let mut ml = Matchline::precharged(&self.ml_config);
        for (_, v) in self.staircase.iter() {
            let mut i_total = 0.0;
            for (col, column) in self.cells.iter().enumerate() {
                if !x.get(col) {
                    continue;
                }
                for cell in column {
                    i_total += cell.current_in_phase(v, true, rng);
                }
            }
            ml.integrate_phase(i_total);
        }
        ml.voltage()
    }

    /// Fraction of the per-cell current variability that is *temporal*
    /// (redrawn per read). The bulk of the 1FeFET1R current spread is
    /// static mismatch, which a replica-referenced comparison largely
    /// cancels (both arrays carry it); only thermal/flicker noise
    /// remains per-read. This is what keeps the Fig. 8 classification
    /// clean even at loads of thousands of units.
    pub const TEMPORAL_NOISE_FRACTION: f64 = 0.1;

    /// Fast-path evaluation from a precomputed load (used by the SA
    /// loop, where the load is tracked incrementally in O(1)).
    pub fn evaluate_fast<R: Rng + ?Sized>(&self, load_units: u64, rng: &mut R) -> f64 {
        let mut ml = Matchline::precharged(&self.ml_config);
        // Aggregate drop at the effective (series-blended) cell current…
        ml.discharge_units(load_units as f64 * self.effective_unit_fraction);
        // …plus per-read noise: each of the `load` conducting
        // cell-phases carries temporal current noise, so the summed
        // charge noise scales with √load.
        let sigma_rel = self.variation.current_sigma_rel() * Self::TEMPORAL_NOISE_FRACTION;
        if sigma_rel > 0.0 && load_units > 0 {
            let sigma_units = sigma_rel * (load_units as f64).sqrt();
            let noise_units = gaussian(rng) * sigma_units;
            if noise_units > 0.0 {
                ml.discharge_units(noise_units);
                return ml.voltage();
            }
            // Negative noise: less discharge → add voltage back
            // (bounded by VDD).
            let v = ml.voltage() - noise_units * ml.config().unit_drop();
            return v.min(self.ml_config.vdd);
        }
        ml.voltage()
    }

    /// The staircase pulse used for evaluation.
    pub fn staircase(&self) -> &StaircasePulse {
        &self.staircase
    }

    /// The matchline configuration in use.
    pub fn matchline_config(&self) -> &MatchlineConfig {
        &self.ml_config
    }

    /// Per-phase ML voltage trace of a device-accurate evaluation —
    /// the transient waveform of paper Fig. 4(c) / Fig. 5(f).
    ///
    /// Returns `num_phases + 1` samples: precharge voltage followed by
    /// the voltage after each phase.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_columns()`.
    pub fn waveform<R: Rng + ?Sized>(&self, x: &Assignment, rng: &mut R) -> Vec<f64> {
        assert_eq!(x.len(), self.num_columns(), "input length mismatch");
        let mut ml = Matchline::precharged(&self.ml_config);
        let mut trace = vec![ml.voltage()];
        for (_, v) in self.staircase.iter() {
            let mut i_total = 0.0;
            for (col, column) in self.cells.iter().enumerate() {
                if !x.get(col) {
                    continue;
                }
                for cell in column {
                    i_total += cell.current_in_phase(v, true, rng);
                }
            }
            ml.integrate_phase(i_total);
            trace.push(ml.voltage());
        }
        trace
    }
}

impl fmt::Display for FilterArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FilterArray({}×{}, {} fidelity)",
            self.rows,
            self.num_columns(),
            self.fidelity
        )
    }
}

/// Decomposes an item weight into `rows` sub-weights of at most
/// `max_level` each: greedy fill (`w = 4+4+…+r+0+…`), per paper
/// Sec 3.3 ("each item weight wᵢ is decomposed into multiple wᵢⱼ
/// values").
pub fn decompose_weight(w: u64, rows: usize, max_level: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(rows);
    let mut remaining = w;
    for _ in 0..rows {
        let sub = remaining.min(u64::from(max_level)) as u8;
        out.push(sub);
        remaining -= u64::from(sub);
    }
    debug_assert_eq!(remaining, 0, "weight {w} does not fit {rows} rows");
    out
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ideal_config() -> FilterConfig {
        FilterConfig::default().with_variation(VariationModel::none())
    }

    #[test]
    fn decomposition_sums_to_weight() {
        for w in 0..=64u64 {
            let subs = decompose_weight(w, 16, 4);
            assert_eq!(subs.len(), 16);
            assert_eq!(subs.iter().map(|&s| u64::from(s)).sum::<u64>(), w);
            assert!(subs.iter().all(|&s| s <= 4));
        }
    }

    #[test]
    fn rejects_oversized_weight() {
        let mut rng = StdRng::seed_from_u64(1);
        let err = FilterArray::program(&[65], &ideal_config(), &mut rng).unwrap_err();
        assert!(matches!(
            err,
            CimError::WeightTooLarge {
                item: 0,
                weight: 65,
                limit: 64
            }
        ));
    }

    #[test]
    fn rejects_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            FilterArray::program(&[], &ideal_config(), &mut rng),
            Err(CimError::EmptyProblem)
        ));
    }

    #[test]
    fn ml_voltage_is_linear_in_load_device_accurate() {
        // Paper Eq. 9: ML ∝ −Σwᵢxᵢ, validated cell-by-cell.
        let cfg = ideal_config().with_fidelity(Fidelity::DeviceAccurate);
        let mut rng = StdRng::seed_from_u64(2);
        let array = FilterArray::program(&[4, 7, 2, 11], &cfg, &mut rng).unwrap();
        let vdd = cfg.matchline.vdd;
        let unit = cfg.matchline.unit_drop();
        let cases = [
            (Assignment::from_bits([false, false, false, false]), 0),
            (Assignment::from_bits([true, false, false, false]), 4),
            (Assignment::from_bits([true, true, false, false]), 11),
            (Assignment::from_bits([true, true, true, true]), 24),
        ];
        for (x, load) in cases {
            let ml = array.evaluate(&x, &mut rng);
            let expected = vdd - unit * load as f64;
            assert!(
                (ml - expected).abs() < 0.02 * unit * (load.max(1) as f64),
                "load {load}: ml {ml}, expected {expected}"
            );
        }
    }

    #[test]
    fn fast_and_device_paths_agree_in_expectation() {
        let mut rng = StdRng::seed_from_u64(3);
        let dev_cfg = FilterConfig::default().with_fidelity(Fidelity::DeviceAccurate);
        let fast_cfg = FilterConfig::default().with_fidelity(Fidelity::Fast);
        let weights = [10, 20, 30, 4];
        let dev = FilterArray::program(&weights, &dev_cfg, &mut rng).unwrap();
        let fast = FilterArray::program(&weights, &fast_cfg, &mut rng).unwrap();
        let x = Assignment::from_bits([true, true, false, true]);
        let avg = |a: &FilterArray, rng: &mut StdRng| {
            (0..200).map(|_| a.evaluate(&x, rng)).sum::<f64>() / 200.0
        };
        let m_dev = avg(&dev, &mut rng);
        let m_fast = avg(&fast, &mut rng);
        let unit = dev_cfg.matchline.unit_drop();
        assert!(
            (m_dev - m_fast).abs() < 2.0 * unit,
            "means differ: device {m_dev}, fast {m_fast}"
        );
    }

    #[test]
    fn waveform_descends_monotonically() {
        let cfg = ideal_config().with_fidelity(Fidelity::DeviceAccurate);
        let mut rng = StdRng::seed_from_u64(4);
        let array = FilterArray::program(&[4, 7, 2], &cfg, &mut rng).unwrap();
        let trace = array.waveform(&Assignment::from_bits([true, true, true]), &mut rng);
        assert_eq!(trace.len(), 5); // precharge + 4 phases
        assert!(trace.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        assert_eq!(trace[0], 2.0);
    }

    #[test]
    fn zero_input_keeps_ml_at_vdd() {
        let cfg = ideal_config().with_fidelity(Fidelity::DeviceAccurate);
        let mut rng = StdRng::seed_from_u64(5);
        let array = FilterArray::program(&[64, 64], &cfg, &mut rng).unwrap();
        let ml = array.evaluate(&Assignment::zeros(2), &mut rng);
        // Only leakage currents: drop far below one unit.
        assert!(2.0 - ml < 0.1 * cfg.matchline.unit_drop());
    }
}
