use std::fmt;

use hycim_fefet::{FefetCell, MultiLevelSpec, VariationModel};
use rand::Rng;

/// One 1FeFET1R filter cell storing a sub-weight in `{0..=4}` (paper
/// Fig. 4(a,b)).
///
/// During a staircase phase with gate voltage `v`, the cell conducts
/// its clamped current iff the input variable is 1 **and** the stored
/// level's threshold lies below `v`. Over the full 4-phase staircase a
/// cell storing `w` therefore conducts in exactly `w` phases,
/// producing a matchline drop proportional to `w·x` (paper Eq. 7).
///
/// # Example
///
/// ```
/// use hycim_cim::filter::FilterCell;
/// use hycim_fefet::{MultiLevelSpec, StaircasePulse, VariationModel};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let spec = MultiLevelSpec::paper_filter();
/// let mut rng = StdRng::seed_from_u64(2);
/// let mut cell = FilterCell::sample(&spec, &VariationModel::none(), &mut rng);
/// cell.store(3);
/// let stair = StaircasePulse::for_spec(&spec, 10.0);
/// let phases_on = stair
///     .iter()
///     .filter(|&(_, v)| cell.current_in_phase(v, true, &mut rng) > 1e-6)
///     .count();
/// assert_eq!(phases_on, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FilterCell {
    inner: FefetCell,
}

impl FilterCell {
    /// Fabricates a filter cell with sampled device variability,
    /// initially storing weight 0.
    pub fn sample<R: Rng + ?Sized>(
        spec: &MultiLevelSpec,
        variation: &VariationModel,
        rng: &mut R,
    ) -> Self {
        Self {
            inner: FefetCell::sample(spec, variation, rng),
        }
    }

    /// An ideal, variation-free cell.
    pub fn ideal(spec: &MultiLevelSpec) -> Self {
        Self {
            inner: FefetCell::ideal(spec),
        }
    }

    /// Stored sub-weight.
    pub fn weight(&self) -> u8 {
        self.inner.level()
    }

    /// Programs the stored sub-weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` exceeds the device's level range.
    pub fn store(&mut self, weight: u8) {
        self.inner.program(weight);
    }

    /// Clamped ON current of this cell (A).
    pub fn clamp_current(&self) -> f64 {
        self.inner.clamp_current()
    }

    /// Cell current during one staircase phase (A): zero when the
    /// input variable `x` is 0 (gate grounded, paper Sec 3.3), else
    /// the device current at the phase's gate voltage.
    ///
    /// # Panics
    ///
    /// Panics if `phase_voltage` exceeds the device's safe range.
    pub fn current_in_phase<R: Rng + ?Sized>(
        &self,
        phase_voltage: f64,
        x: bool,
        rng: &mut R,
    ) -> f64 {
        if !x {
            return 0.0;
        }
        self.inner.current(phase_voltage, rng)
    }
}

impl fmt::Display for FilterCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FilterCell(w={})", self.weight())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_fefet::StaircasePulse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conduction_phases_equal_weight() {
        // The Fig. 4(c) property for every storable weight.
        let spec = MultiLevelSpec::paper_filter();
        let stair = StaircasePulse::for_spec(&spec, 10.0);
        let mut rng = StdRng::seed_from_u64(3);
        for w in 0..=4u8 {
            let mut cell = FilterCell::ideal(&spec);
            cell.store(w);
            let on = stair
                .iter()
                .filter(|&(_, v)| {
                    cell.current_in_phase(v, true, &mut rng) > 0.5 * cell.clamp_current()
                })
                .count();
            assert_eq!(on, usize::from(w), "weight {w}");
        }
    }

    #[test]
    fn grounded_gate_never_conducts() {
        let spec = MultiLevelSpec::paper_filter();
        let mut rng = StdRng::seed_from_u64(4);
        let mut cell = FilterCell::ideal(&spec);
        cell.store(4);
        for v in spec.read_voltages() {
            assert_eq!(cell.current_in_phase(v, false, &mut rng), 0.0);
        }
    }

    #[test]
    fn variability_preserves_classification() {
        // With the paper's variation, level separation (500 mV) must
        // dominate Vt noise (~30 mV) — every cell still conducts in
        // exactly `w` phases.
        let spec = MultiLevelSpec::paper_filter();
        let stair = StaircasePulse::for_spec(&spec, 10.0);
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..50 {
            let w = trial % 5;
            let mut cell = FilterCell::sample(&spec, &VariationModel::paper(), &mut rng);
            cell.store(w as u8);
            let on = stair
                .iter()
                .filter(|&(_, v)| {
                    cell.current_in_phase(v, true, &mut rng) > 0.5 * cell.clamp_current()
                })
                .count();
            assert_eq!(on, w, "trial {trial}");
        }
    }
}
