use std::fmt;

use rand::Rng;

/// The 2-stage voltage comparator of the inequality filter (paper
/// Fig. 5(c–e)): a differential pre-amplifier followed by a dynamic
/// latched comparator.
///
/// At the behavioral level the non-idealities that matter are a fixed
/// input-referred **offset** (sampled once, as in a fabricated
/// comparator) and per-decision **noise**; both are Gaussian. A
/// decision declares the working ML *feasible* when
/// `v_ml + noise ≥ v_replica + offset`.
///
/// # Example
///
/// ```
/// use hycim_cim::filter::{ComparatorConfig, VoltageComparator};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let cmp = VoltageComparator::sample(&ComparatorConfig::ideal(), &mut rng);
/// assert!(cmp.at_least(1.5, 1.0, &mut rng));
/// assert!(!cmp.at_least(0.5, 1.0, &mut rng));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageComparator {
    offset: f64,
    noise_sigma: f64,
}

/// Construction parameters for [`VoltageComparator`].
#[derive(Debug, Clone, PartialEq)]
pub struct ComparatorConfig {
    /// Standard deviation of the fixed input-referred offset (V).
    pub offset_sigma: f64,
    /// Standard deviation of per-decision noise (V).
    pub noise_sigma: f64,
}

impl ComparatorConfig {
    /// Paper-calibrated: 0.05 mV offset sigma (an offset-trimmed
    /// 2-stage design) and 0.02 mV decision noise — a quarter of a
    /// weight unit (ΔV_unit = 0.2 mV), so only configurations within
    /// about one weight unit of the boundary can misclassify,
    /// consistent with the clean separation of Fig. 8.
    pub fn paper() -> Self {
        Self {
            offset_sigma: 0.05e-3,
            noise_sigma: 0.02e-3,
        }
    }

    /// A perfectly ideal comparator.
    pub fn ideal() -> Self {
        Self {
            offset_sigma: 0.0,
            noise_sigma: 0.0,
        }
    }
}

impl Default for ComparatorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl VoltageComparator {
    /// Fabricates a comparator, sampling its fixed offset.
    pub fn sample<R: Rng + ?Sized>(config: &ComparatorConfig, rng: &mut R) -> Self {
        let offset = if config.offset_sigma > 0.0 {
            gaussian(rng) * config.offset_sigma
        } else {
            0.0
        };
        Self {
            offset,
            noise_sigma: config.noise_sigma,
        }
    }

    /// The fixed input-referred offset (V) of this comparator instance.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Decides whether `v_a ≥ v_b`, subject to offset and noise.
    pub fn at_least<R: Rng + ?Sized>(&self, v_a: f64, v_b: f64, rng: &mut R) -> bool {
        let noise = if self.noise_sigma > 0.0 {
            gaussian(rng) * self.noise_sigma
        } else {
            0.0
        };
        v_a + noise >= v_b + self.offset
    }
}

impl fmt::Display for VoltageComparator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VoltageComparator(offset={:.3} mV, noise σ={:.3} mV)",
            self.offset * 1e3,
            self.noise_sigma * 1e3
        )
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_comparator_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let cmp = VoltageComparator::sample(&ComparatorConfig::ideal(), &mut rng);
        assert_eq!(cmp.offset(), 0.0);
        assert!(cmp.at_least(1.0, 1.0, &mut rng)); // ties resolve feasible
        assert!(cmp.at_least(1.0 + 1e-12, 1.0, &mut rng));
        assert!(!cmp.at_least(1.0 - 1e-9, 1.0, &mut rng));
    }

    #[test]
    fn decisions_far_from_boundary_are_reliable() {
        let mut rng = StdRng::seed_from_u64(2);
        let cmp = VoltageComparator::sample(&ComparatorConfig::paper(), &mut rng);
        // 10 weight units (2 mV) of margin: decisions must be stable.
        for _ in 0..1000 {
            assert!(cmp.at_least(1.002, 1.000, &mut rng));
            assert!(!cmp.at_least(0.998, 1.000, &mut rng));
        }
    }

    #[test]
    fn boundary_decisions_are_noisy() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = ComparatorConfig {
            offset_sigma: 0.0,
            noise_sigma: 0.5e-3,
        };
        let cmp = VoltageComparator::sample(&cfg, &mut rng);
        let yes = (0..2000)
            .filter(|_| cmp.at_least(1.0, 1.0, &mut rng))
            .count();
        // Exactly at the boundary with symmetric noise → ~50/50.
        assert!((800..1200).contains(&yes), "saw {yes}/2000 feasible");
    }

    #[test]
    fn offsets_vary_across_instances() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = ComparatorConfig::paper();
        let offsets: Vec<f64> = (0..50)
            .map(|_| VoltageComparator::sample(&cfg, &mut rng).offset())
            .collect();
        assert!(offsets.iter().any(|&o| o != offsets[0]));
    }
}
