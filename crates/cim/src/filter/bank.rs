use std::fmt;

use hycim_qubo::{Assignment, LinearConstraint};
use rand::Rng;

use crate::filter::{FilterConfig, FilterDecision, InequalityFilter};
use crate::CimError;

/// A bank of inequality filters evaluating several constraints in
/// parallel — the natural multi-constraint generalization of the
/// paper's single-filter architecture (Sec 3.3), needed for COPs like
/// bin packing where every bin contributes one `Σ sᵢx_{i,k} ≤ C`
/// inequality (paper Sec 1 lists bin packing among the motivating
/// problems).
///
/// A configuration is admitted only when **every** filter reports it
/// feasible; in hardware all filters evaluate concurrently in the same
/// 4-phase read, so the bank costs one filter latency regardless of
/// the constraint count.
///
/// # Example
///
/// ```
/// use hycim_cim::filter::{FilterBank, FilterConfig};
/// use hycim_qubo::{Assignment, LinearConstraint};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(1);
/// let constraints = vec![
///     LinearConstraint::new(vec![3, 0, 4], 5)?,
///     LinearConstraint::new(vec![0, 6, 2], 7)?,
/// ];
/// let bank = FilterBank::build(&constraints, &FilterConfig::default(), &mut rng)?;
/// let x = Assignment::from_bits([true, true, false]);
/// assert!(bank.classify(&x, &mut rng).is_feasible()); // 3 ≤ 5 and 6 ≤ 7
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FilterBank {
    filters: Vec<InequalityFilter>,
    constraints: Vec<LinearConstraint>,
}

/// Outcome of one bank evaluation: per-filter decisions plus the
/// aggregate verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct BankDecision {
    decisions: Vec<FilterDecision>,
}

impl BankDecision {
    /// Whether every constraint was classified feasible.
    pub fn is_feasible(&self) -> bool {
        self.decisions.iter().all(FilterDecision::is_feasible)
    }

    /// Per-filter decisions, in constraint order.
    pub fn decisions(&self) -> &[FilterDecision] {
        &self.decisions
    }

    /// Index of the first violated constraint, if any.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_cim::filter::{FilterBank, FilterConfig};
    /// use hycim_qubo::{Assignment, LinearConstraint};
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut rng = StdRng::seed_from_u64(7);
    /// // Noise-free filters so the doctest is exact at any seed.
    /// let config = FilterConfig::default()
    ///     .with_variation(hycim_fefet::VariationModel::none())
    ///     .with_comparator(hycim_cim::filter::ComparatorConfig::ideal());
    /// let bank = FilterBank::build(
    ///     &[
    ///         LinearConstraint::new(vec![3, 0, 4], 5)?,
    ///         LinearConstraint::new(vec![0, 6, 2], 7)?,
    ///     ],
    ///     &config,
    ///     &mut rng,
    /// )?;
    /// // x = 101: first constraint loaded to 7 > 5, second to 2 ≤ 7.
    /// let decision = bank.classify(&Assignment::parse_bit_string("101").unwrap(), &mut rng);
    /// assert_eq!(decision.first_violation(), Some(0));
    /// // A feasible configuration has no violation to report.
    /// let ok = bank.classify(&Assignment::parse_bit_string("100").unwrap(), &mut rng);
    /// assert_eq!(ok.first_violation(), None);
    /// # Ok(())
    /// # }
    /// ```
    pub fn first_violation(&self) -> Option<usize> {
        self.decisions.iter().position(|d| !d.is_feasible())
    }
}

impl FilterBank {
    /// Builds one filter per constraint. All constraints must share
    /// the same variable count.
    ///
    /// # Errors
    ///
    /// * [`CimError::EmptyProblem`] for an empty constraint list.
    /// * [`CimError::DimensionMismatch`] if constraint dimensions
    ///   disagree.
    /// * Per-filter mapping errors ([`CimError::WeightTooLarge`],
    ///   [`CimError::CapacityTooLarge`]).
    pub fn build<R: Rng + ?Sized>(
        constraints: &[LinearConstraint],
        config: &FilterConfig,
        rng: &mut R,
    ) -> Result<Self, CimError> {
        let Some(first) = constraints.first() else {
            return Err(CimError::EmptyProblem);
        };
        let dim = first.dim();
        let mut filters = Vec::with_capacity(constraints.len());
        for c in constraints {
            if c.dim() != dim {
                return Err(CimError::DimensionMismatch {
                    expected: dim,
                    found: c.dim(),
                });
            }
            filters.push(InequalityFilter::build(
                c.weights(),
                c.capacity(),
                config,
                rng,
            )?);
        }
        Ok(Self {
            filters,
            constraints: constraints.to_vec(),
        })
    }

    /// Number of constraints / filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Whether the bank is empty (never true for a built bank).
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.constraints[0].dim()
    }

    /// The constraints encoded in the bank.
    pub fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }

    /// The individual filters.
    pub fn filters(&self) -> &[InequalityFilter] {
        &self.filters
    }

    /// Evaluates a configuration against every constraint.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn classify<R: Rng + ?Sized>(&self, x: &Assignment, rng: &mut R) -> BankDecision {
        BankDecision {
            decisions: self.filters.iter().map(|f| f.classify(x, rng)).collect(),
        }
    }

    /// Fast-path evaluation from precomputed per-constraint loads (the
    /// SA loop tracks each load incrementally).
    ///
    /// # Panics
    ///
    /// Panics if `loads.len() != self.len()`.
    pub fn classify_loads<R: Rng + ?Sized>(&self, loads: &[u64], rng: &mut R) -> BankDecision {
        assert_eq!(loads.len(), self.len(), "one load per constraint");
        BankDecision {
            decisions: self
                .filters
                .iter()
                .zip(loads)
                .map(|(f, &load)| f.classify_load(load, rng))
                .collect(),
        }
    }
}

impl fmt::Display for FilterBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FilterBank({} constraints, n={})",
            self.len(),
            self.dim()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn constraints() -> Vec<LinearConstraint> {
        vec![
            LinearConstraint::new(vec![3, 0, 4, 1], 5).unwrap(),
            LinearConstraint::new(vec![0, 6, 2, 2], 7).unwrap(),
        ]
    }

    #[test]
    fn build_and_classify() {
        let mut rng = StdRng::seed_from_u64(1);
        let bank = FilterBank::build(&constraints(), &FilterConfig::default(), &mut rng)
            .expect("buildable");
        assert_eq!(bank.len(), 2);
        assert_eq!(bank.dim(), 4);

        // x = 1100: loads (3, 6) → both within capacity.
        let ok = bank.classify(&Assignment::parse_bit_string("1100").unwrap(), &mut rng);
        assert!(ok.is_feasible());
        assert!(ok.first_violation().is_none());

        // x = 1010: loads (7, 2) → first constraint violated (7 > 5).
        let bad = bank.classify(&Assignment::parse_bit_string("1010").unwrap(), &mut rng);
        assert!(!bad.is_feasible());
        assert_eq!(bad.first_violation(), Some(0));
        assert_eq!(bad.decisions().len(), 2);
    }

    #[test]
    fn fast_path_agrees_with_full_path() {
        // Noise off: at the 1-unit analog margins in `constraints()` a
        // badly-offset comparator sample can legitimately misclassify
        // (cf. Fig. 8 error rates), and this test asserts the *exact*
        // equivalence of the two evaluation paths, not noise
        // robustness — so it must hold for every seed.
        let config = FilterConfig::default()
            .with_variation(hycim_fefet::VariationModel::none())
            .with_comparator(crate::filter::ComparatorConfig::ideal());
        let mut rng = StdRng::seed_from_u64(2);
        let cs = constraints();
        let bank = FilterBank::build(&cs, &config, &mut rng).unwrap();
        for bits in 0u32..16 {
            let x = Assignment::from_bits((0..4).map(|i| bits >> i & 1 == 1));
            let loads: Vec<u64> = cs.iter().map(|c| c.load(&x)).collect();
            let full = bank.classify(&x, &mut rng).is_feasible();
            let fast = bank.classify_loads(&loads, &mut rng).is_feasible();
            let exact = cs.iter().all(|c| c.is_satisfied(&x));
            assert_eq!(full, exact, "full path wrong for {x}");
            assert_eq!(fast, exact, "fast path wrong for {x}");
        }
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            FilterBank::build(&[], &FilterConfig::default(), &mut rng),
            Err(CimError::EmptyProblem)
        ));
        let mismatched = vec![
            LinearConstraint::new(vec![1, 2], 3).unwrap(),
            LinearConstraint::new(vec![1, 2, 3], 4).unwrap(),
        ];
        assert!(matches!(
            FilterBank::build(&mismatched, &FilterConfig::default(), &mut rng),
            Err(CimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn display_shows_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let bank = FilterBank::build(&constraints(), &FilterConfig::default(), &mut rng).unwrap();
        assert!(bank.to_string().contains("2 constraints"));
    }
}
