//! The FeFET-based CiM inequality filter (paper Sec 3.3, Fig. 4–5).
//!
//! Architecture (Fig. 5(b)): a **working array** stores the decomposed
//! item weights and discharges its matchline by `ΔV_unit · Σwᵢxᵢ`; a
//! **replica array** stores a precomputed weight vector with a fixed
//! input satisfying `Σw′ᵢx′ᵢ = C`, so its matchline settles at
//! `VDD − ΔV_unit · C`; a **2-stage voltage comparator** compares the
//! two. `ML ≥ ReplicaML ⇔ Σwᵢxᵢ ≤ C` — feasible configurations are
//! forwarded to the QUBO crossbar, infeasible ones bounce back to the
//! SA logic (Fig. 3).

mod array;
mod bank;
mod cell;
mod comparator;

use std::fmt;

use hycim_fefet::{MultiLevelSpec, VariationModel};
use hycim_qubo::Assignment;
use rand::Rng;

pub use array::{decompose_weight, FilterArray};
pub use bank::{BankDecision, FilterBank};
pub use cell::FilterCell;
pub use comparator::{ComparatorConfig, VoltageComparator};

use crate::{CimError, Fidelity, MatchlineConfig};

/// Construction parameters for an [`InequalityFilter`].
///
/// Defaults reproduce the paper's Sec 4.1 evaluation setup: 16-row
/// arrays of 5-level cells (per-item weights up to 64), 2 V supply,
/// paper-calibrated variability.
#[derive(Debug, Clone)]
pub struct FilterConfig {
    /// Rows per array (paper: 16).
    pub rows: usize,
    /// Device specification for the cells (paper: 5-level FeFET).
    pub spec: MultiLevelSpec,
    /// Matchline electrical parameters.
    pub matchline: MatchlineConfig,
    /// Device variability model.
    pub variation: VariationModel,
    /// Comparator non-idealities.
    pub comparator: ComparatorConfig,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
}

impl FilterConfig {
    /// The paper's evaluation configuration (Sec 4.1).
    pub fn paper() -> Self {
        Self {
            rows: 16,
            spec: MultiLevelSpec::paper_filter(),
            matchline: MatchlineConfig::paper(),
            variation: VariationModel::paper(),
            comparator: ComparatorConfig::paper(),
            fidelity: Fidelity::default(),
        }
    }

    /// Replaces the variability model.
    pub fn with_variation(mut self, variation: VariationModel) -> Self {
        self.variation = variation;
        self
    }

    /// Replaces the comparator model.
    pub fn with_comparator(mut self, comparator: ComparatorConfig) -> Self {
        self.comparator = comparator;
        self
    }

    /// Replaces the simulation fidelity.
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Replaces the row count.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    pub fn with_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "need at least one row");
        self.rows = rows;
        self
    }

    /// Largest per-item weight the working array can store.
    pub fn max_item_weight(&self) -> u64 {
        self.rows as u64 * u64::from(self.spec.max_level())
    }
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Outcome of one filter evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterDecision {
    feasible: bool,
    ml: f64,
    replica_ml: f64,
}

impl FilterDecision {
    /// Whether the configuration was classified feasible
    /// (`Σwᵢxᵢ ≤ C`) and may proceed to the QUBO crossbar.
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// Working-array matchline voltage (V).
    pub fn ml(&self) -> f64 {
        self.ml
    }

    /// Replica matchline voltage (V).
    pub fn replica_ml(&self) -> f64 {
        self.replica_ml
    }

    /// Working ML normalized by the replica ML — the quantity plotted
    /// in paper Fig. 8 (feasible configurations land at ≥ 1).
    pub fn normalized_ml(&self) -> f64 {
        self.ml / self.replica_ml
    }
}

/// The complete inequality filter: working array + replica array +
/// comparator (paper Fig. 5(b)).
#[derive(Debug, Clone)]
pub struct InequalityFilter {
    working: FilterArray,
    replica: FilterArray,
    comparator: VoltageComparator,
    capacity: u64,
    /// Built-in feasibility bias (V): the comparator latch is skewed by
    /// half a weight unit so the exact-boundary case `Σwᵢxᵢ = C`
    /// (which the paper's Fig. 5(f) counts as feasible, `9 ≤ 9`)
    /// resolves feasible; the decision threshold then sits midway
    /// between loads `C` and `C+1`.
    decision_margin: f64,
}

impl InequalityFilter {
    /// Builds a filter for the inequality `Σ wᵢxᵢ ≤ capacity`.
    ///
    /// The replica array is programmed with a weight vector summing to
    /// `capacity` under an all-ones input (paper Eq. 10).
    ///
    /// # Errors
    ///
    /// * [`CimError::WeightTooLarge`] if an item weight exceeds
    ///   `rows × max_level` (64 in the paper configuration).
    /// * [`CimError::CapacityTooLarge`] if the capacity exceeds what
    ///   the replica array can encode (`rows × n × max_level`).
    /// * [`CimError::EmptyProblem`] for an empty weight list.
    pub fn build<R: Rng + ?Sized>(
        weights: &[u64],
        capacity: u64,
        config: &FilterConfig,
        rng: &mut R,
    ) -> Result<Self, CimError> {
        if weights.is_empty() {
            return Err(CimError::EmptyProblem);
        }
        let n = weights.len();
        let replica_limit = config.max_item_weight() * n as u64;
        if capacity > replica_limit {
            return Err(CimError::CapacityTooLarge {
                capacity,
                limit: replica_limit,
            });
        }
        let working = FilterArray::program(weights, config, rng)?;
        // Spread the capacity across the replica's n columns.
        let replica_weights = spread_capacity(capacity, n, config.max_item_weight());
        let replica = FilterArray::program(&replica_weights, config, rng)?;
        let comparator = VoltageComparator::sample(&config.comparator, rng);
        let decision_margin = 0.5 * config.matchline.unit_drop();
        Ok(Self {
            working,
            replica,
            comparator,
            capacity,
            decision_margin,
        })
    }

    /// The encoded capacity `C`.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The working array.
    pub fn working_array(&self) -> &FilterArray {
        &self.working
    }

    /// The replica array.
    pub fn replica_array(&self) -> &FilterArray {
        &self.replica
    }

    /// The comparator instance.
    pub fn comparator(&self) -> &VoltageComparator {
        &self.comparator
    }

    /// Evaluates one input configuration: precharge, 4-phase staircase
    /// on both arrays, comparator decision (paper Fig. 5(f)).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the number of items.
    pub fn classify<R: Rng + ?Sized>(&self, x: &Assignment, rng: &mut R) -> FilterDecision {
        let ml = self.working.evaluate(x, rng);
        let replica_ml = self
            .replica
            .evaluate(&Assignment::ones_vec(self.replica.num_columns()), rng);
        let feasible = self
            .comparator
            .at_least(ml + self.decision_margin, replica_ml, rng);
        FilterDecision {
            feasible,
            ml,
            replica_ml,
        }
    }

    /// Fast-path classification from a precomputed load (the SA loop
    /// tracks `Σwᵢxᵢ` incrementally in O(1) per flip).
    pub fn classify_load<R: Rng + ?Sized>(&self, load: u64, rng: &mut R) -> FilterDecision {
        let ml = self.working.evaluate_fast(load, rng);
        let replica_ml = self.replica.evaluate_fast(self.capacity, rng);
        let feasible = self
            .comparator
            .at_least(ml + self.decision_margin, replica_ml, rng);
        FilterDecision {
            feasible,
            ml,
            replica_ml,
        }
    }
}

impl fmt::Display for InequalityFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InequalityFilter({}×{} working + replica, C={})",
            self.working.num_rows(),
            self.working.num_columns(),
            self.capacity
        )
    }
}

/// Spreads a capacity across `n` replica columns, each holding at most
/// `max_per_column` units.
fn spread_capacity(capacity: u64, n: usize, max_per_column: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut remaining = capacity;
    for _ in 0..n {
        let chunk = remaining.min(max_per_column);
        out.push(chunk);
        remaining -= chunk;
    }
    debug_assert_eq!(remaining, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_fig5f(config: &FilterConfig, seed: u64) -> (InequalityFilter, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let filter = InequalityFilter::build(&[4, 7, 2], 9, config, &mut rng).unwrap();
        (filter, rng)
    }

    #[test]
    fn fig5f_truth_table_device_accurate() {
        // Paper Fig. 5(f): all 8 configurations of 4x₁+7x₂+2x₃ ≤ 9.
        let config = FilterConfig::default().with_fidelity(Fidelity::DeviceAccurate);
        let (filter, mut rng) = build_fig5f(&config, 11);
        for bits in 0u32..8 {
            let x = Assignment::from_bits((0..3).map(|i| bits >> i & 1 == 1));
            let load = [4u64, 7, 2]
                .iter()
                .zip(x.iter())
                .filter(|(_, b)| *b)
                .map(|(w, _)| w)
                .sum::<u64>();
            let decision = filter.classify(&x, &mut rng);
            assert_eq!(
                decision.is_feasible(),
                load <= 9,
                "load {load} misclassified (ml {:.4}, replica {:.4})",
                decision.ml(),
                decision.replica_ml()
            );
        }
    }

    #[test]
    fn fig5f_truth_table_fast() {
        let config = FilterConfig::default().with_fidelity(Fidelity::Fast);
        let (filter, mut rng) = build_fig5f(&config, 12);
        for bits in 0u32..8 {
            let x = Assignment::from_bits((0..3).map(|i| bits >> i & 1 == 1));
            let load = [4u64, 7, 2]
                .iter()
                .zip(x.iter())
                .filter(|(_, b)| *b)
                .map(|(w, _)| w)
                .sum::<u64>();
            assert_eq!(filter.classify(&x, &mut rng).is_feasible(), load <= 9);
            assert_eq!(
                filter.classify_load(load, &mut rng).is_feasible(),
                load <= 9
            );
        }
    }

    #[test]
    fn normalized_ml_separates_classes() {
        // The Fig. 8 property: feasible configurations normalize ≥ ~1,
        // infeasible < 1.
        let config = FilterConfig::default().with_fidelity(Fidelity::DeviceAccurate);
        let (filter, mut rng) = build_fig5f(&config, 13);
        let feasible = filter.classify(&Assignment::from_bits([true, false, true]), &mut rng);
        let infeasible = filter.classify(&Assignment::from_bits([true, true, true]), &mut rng);
        assert!(feasible.normalized_ml() >= 0.999);
        assert!(infeasible.normalized_ml() < 1.0);
        assert!(feasible.normalized_ml() > infeasible.normalized_ml());
    }

    #[test]
    fn capacity_too_large_rejected() {
        let mut rng = StdRng::seed_from_u64(14);
        // 1 item → replica limit is 64.
        let err =
            InequalityFilter::build(&[4], 65, &FilterConfig::default(), &mut rng).unwrap_err();
        assert!(matches!(err, CimError::CapacityTooLarge { limit: 64, .. }));
    }

    #[test]
    fn paper_scale_16x100_filter() {
        // The Sec 4.1 array size: 16×100, weights ≤ 64, capacity up to
        // the paper's 2536.
        let mut rng = StdRng::seed_from_u64(15);
        let weights: Vec<u64> = (0..100).map(|i| (i % 50) + 1).collect();
        let filter =
            InequalityFilter::build(&weights, 1300, &FilterConfig::default(), &mut rng).unwrap();
        assert_eq!(filter.working_array().num_columns(), 100);
        assert_eq!(filter.working_array().num_rows(), 16);
        // A clearly light configuration passes, a clearly heavy one fails.
        let light = Assignment::from_bits((0..100).map(|i| i < 10));
        let heavy = Assignment::ones_vec(100);
        assert!(filter.classify(&light, &mut rng).is_feasible());
        assert!(!filter.classify(&heavy, &mut rng).is_feasible());
    }

    #[test]
    fn spread_capacity_sums() {
        let spread = spread_capacity(130, 5, 64);
        assert_eq!(spread.iter().sum::<u64>(), 130);
        assert!(spread.iter().all(|&c| c <= 64));
    }

    #[test]
    fn display_mentions_capacity() {
        let (filter, _) = build_fig5f(&FilterConfig::default(), 16);
        assert!(filter.to_string().contains("C=9"));
    }
}
