//! Property-based tests for the QUBO algebra invariants.

use hycim_qubo::dqubo::{AuxEncoding, DquboForm, PenaltyWeights};
use hycim_qubo::quant::QuantizedMatrix;
use hycim_qubo::{Assignment, InequalityQubo, IsingModel, LinearConstraint, QuboMatrix};
use proptest::prelude::*;

fn arb_qubo(max_n: usize) -> impl Strategy<Value = QuboMatrix> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-100.0..100.0f64, n * (n + 1) / 2).prop_map(move |vals| {
            let mut q = QuboMatrix::zeros(n);
            let mut it = vals.into_iter();
            for i in 0..n {
                for j in i..n {
                    q.set(i, j, it.next().unwrap());
                }
            }
            q
        })
    })
}

fn arb_assignment(n: usize) -> impl Strategy<Value = Assignment> {
    proptest::collection::vec(any::<bool>(), n).prop_map(Assignment::from_bits)
}

fn arb_constraint(n: usize) -> impl Strategy<Value = LinearConstraint> {
    (proptest::collection::vec(1u64..20, n), 1u64..40)
        .prop_map(|(w, c)| LinearConstraint::new(w, c).expect("valid constraint"))
}

proptest! {
    /// QUBO → Ising conversion is exact for every configuration.
    #[test]
    fn qubo_ising_energy_agreement(q in arb_qubo(10), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let ising = IsingModel::from_qubo(&q);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Assignment::random(q.dim(), &mut rng);
        prop_assert!((q.energy(&x) - ising.energy_of_assignment(&x)).abs() < 1e-6);
    }

    /// Ising → QUBO → energy roundtrip is exact up to the offset.
    #[test]
    fn ising_roundtrip(q in arb_qubo(8), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let ising = IsingModel::from_qubo(&q);
        let (q2, constant) = ising.to_qubo().expect("nonempty");
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Assignment::random(q.dim(), &mut rng);
        prop_assert!((q.energy(&x) - (q2.energy(&x) + constant)).abs() < 1e-6);
    }

    /// Incremental flip delta always matches a full recompute.
    #[test]
    fn flip_delta_consistency(q in arb_qubo(12), seed in any::<u64>(), pick in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Assignment::random(q.dim(), &mut rng);
        let i = (pick as usize) % q.dim();
        let before = q.energy(&x);
        let delta = q.flip_delta(&x, i);
        x.flip(i);
        prop_assert!((q.energy(&x) - before - delta).abs() < 1e-6);
    }

    /// Energy is invariant under the (i,j)/(j,i) fold: building from
    /// transposed triplets gives the same energies.
    #[test]
    fn triplet_fold_symmetry(q in arb_qubo(8), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let transposed: Vec<_> = q.iter_nonzero().map(|(i, j, v)| (j, i, v)).collect();
        let q2 = QuboMatrix::from_triplets(q.dim(), transposed).expect("valid");
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Assignment::random(q.dim(), &mut rng);
        prop_assert!((q.energy(&x) - q2.energy(&x)).abs() < 1e-9);
    }

    /// The inequality-QUBO gate: feasible energies equal the raw
    /// objective, infeasible energies are exactly zero.
    #[test]
    fn inequality_gate((q, c, x) in (1usize..10).prop_flat_map(|n| {
        (arb_qubo_fixed(n), arb_constraint(n), arb_assignment(n))
    })) {
        let iq = InequalityQubo::new(q.clone(), c.clone()).expect("dims match");
        if c.is_satisfied(&x) {
            prop_assert_eq!(iq.energy(&x), q.energy(&x));
        } else {
            prop_assert_eq!(iq.energy(&x), 0.0);
        }
    }

    /// D-QUBO one-hot: lifting any *feasible nonempty* configuration
    /// yields zero penalty; lifting any infeasible one cannot.
    #[test]
    fn dqubo_lift_penalty((q, c, x) in (1usize..7).prop_flat_map(|n| {
        (arb_qubo_fixed(n), arb_constraint(n), arb_assignment(n))
    })) {
        let d = DquboForm::transform(&q, &c, PenaltyWeights::PAPER, AuxEncoding::OneHot)
            .expect("dims match");
        let z = d.lift(&x);
        let p = d.penalty(&z, &q);
        let load = c.load(&x);
        if load >= 1 && load <= c.capacity() {
            prop_assert!(p.abs() < 1e-6, "feasible lift penalty {p}");
        } else {
            prop_assert!(p > 0.0, "infeasible/empty lift penalty {p}");
        }
    }

    /// Binary-slack D-QUBO dimension is logarithmic in C while one-hot
    /// is linear — and both penalize the same infeasible configurations.
    #[test]
    fn dqubo_encodings_agree_on_feasibility((q, c, x) in (1usize..6).prop_flat_map(|n| {
        (arb_qubo_fixed(n), arb_constraint(n), arb_assignment(n))
    })) {
        let one_hot = DquboForm::transform(&q, &c, PenaltyWeights::PAPER, AuxEncoding::OneHot)
            .expect("one-hot");
        let binary = DquboForm::transform(&q, &c, PenaltyWeights::PAPER, AuxEncoding::Binary)
            .expect("binary");
        prop_assert!(binary.num_aux() <= one_hot.num_aux());
        let pb = binary.penalty(&binary.lift(&x), &q);
        if c.is_satisfied(&x) {
            prop_assert!(pb.abs() < 1e-6);
        } else {
            prop_assert!(pb > 0.0);
        }
    }

    /// Quantization error of every coefficient stays within half a level.
    #[test]
    fn quantization_error_bound(q in arb_qubo(8), bits in 2u32..12) {
        let quant = QuantizedMatrix::quantize(&q, bits);
        let back = quant.dequantize();
        for (i, j, v) in q.iter_nonzero() {
            prop_assert!((back.get(i, j) - v).abs() <= quant.max_error() + 1e-9);
        }
    }

    /// Feasible fraction from DP matches exhaustive enumeration.
    #[test]
    fn feasible_fraction_matches_enumeration(c in (1usize..10).prop_flat_map(arb_constraint)) {
        let n = c.dim();
        let mut feasible = 0u64;
        for bits in 0u64..(1 << n) {
            let x = Assignment::from_bits((0..n).map(|i| bits >> i & 1 == 1));
            if c.is_satisfied(&x) {
                feasible += 1;
            }
        }
        let expected = feasible as f64 / (1u64 << n) as f64;
        prop_assert!((c.feasible_fraction() - expected).abs() < 1e-9);
    }
}

fn arb_qubo_fixed(n: usize) -> impl Strategy<Value = QuboMatrix> {
    proptest::collection::vec(-100.0..100.0f64, n * (n + 1) / 2).prop_map(move |vals| {
        let mut q = QuboMatrix::zeros(n);
        let mut it = vals.into_iter();
        for i in 0..n {
            for j in i..n {
                q.set(i, j, it.next().unwrap());
            }
        }
        q
    })
}

// ---------------------------------------------------------------------
// Local-field incremental energy laws
// ---------------------------------------------------------------------

proptest! {
    /// A random sequence of probe/commit single- and pair-flip
    /// operations on [`LocalFieldState`] matches the dense
    /// `QuboMatrix::flip_delta` probe *and* a full `energy()`
    /// recompute within 1e-9 at every step.
    #[test]
    fn local_field_ops_match_dense(
        q in arb_qubo(14),
        seed in any::<u64>(),
        steps in 1usize..150,
    ) {
        use hycim_qubo::LocalFieldState;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let n = q.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Assignment::random(n, &mut rng);
        let mut lf = LocalFieldState::new(&q, &x);
        let mut energy = q.energy(&x);
        for _ in 0..steps {
            let i = rng.random_range(0..n);
            if n > 1 && rng.random_bool(0.3) {
                let j = (i + 1 + rng.random_range(0..n - 1)) % n;
                let delta = lf.pair_delta(&x, i, j);
                let dense = q.flip_delta(&x, i) + q.flip_delta(&x, j)
                    + q.get(i, j)
                        * if x.get(i) { -1.0 } else { 1.0 }
                        * if x.get(j) { -1.0 } else { 1.0 };
                prop_assert!((delta - dense).abs() < 1e-9, "pair probe diverged");
                if rng.random_bool(0.7) {
                    x.flip(i);
                    x.flip(j);
                    lf.commit_pair(&x, i, j);
                    energy += delta;
                }
            } else {
                let delta = lf.flip_delta(&x, i);
                prop_assert!((delta - q.flip_delta(&x, i)).abs() < 1e-9, "probe diverged");
                if rng.random_bool(0.7) {
                    x.flip(i);
                    lf.commit_flip(&x, i);
                    energy += delta;
                }
            }
            prop_assert!((energy - q.energy(&x)).abs() < 1e-8, "tracked energy diverged");
        }
    }

    /// The periodic refresh bounds float drift: after an arbitrarily
    /// long committed walk with a small refresh interval, every
    /// maintained field is within 1e-9 of the exact sum.
    #[test]
    fn local_field_refresh_bounds_drift(
        q in arb_qubo(10),
        seed in any::<u64>(),
        walk in 50usize..400,
    ) {
        use hycim_qubo::LocalFieldState;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let n = q.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Assignment::random(n, &mut rng);
        let mut lf = LocalFieldState::new(&q, &x).with_refresh_interval(16);
        for _ in 0..walk {
            let i = rng.random_range(0..n);
            x.flip(i);
            lf.commit_flip(&x, i);
        }
        // The interval guarantees at most 15 un-refreshed commits of
        // drift; with |Q| <= 100 that is far inside 1e-9.
        prop_assert!(lf.commits_since_refresh() < 16);
        for i in 0..n {
            prop_assert!(
                (lf.flip_delta(&x, i) - q.flip_delta(&x, i)).abs() < 1e-9,
                "field {i} drifted past the refresh bound"
            );
        }
    }

    /// The cached popcount stays consistent with the bits through any
    /// interleaving of set/flip/extend/truncate operations.
    #[test]
    fn ones_cache_matches_bits(
        seed in any::<u64>(),
        n in 1usize..40,
        ops in proptest::collection::vec((any::<u8>(), any::<usize>()), 1..80),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Assignment::random(n, &mut rng);
        for (op, raw) in ops {
            if x.is_empty() {
                break;
            }
            let i = raw % x.len();
            match op % 5 {
                0 => x.set(i, true),
                1 => x.set(i, false),
                2 => {
                    x.flip(i);
                }
                3 => x = x.extended(1),
                _ => x = x.truncated(x.len() - (x.len() > 1) as usize),
            }
            prop_assert_eq!(x.ones(), x.support().len(), "ones cache diverged");
        }
    }
}

proptest! {
    /// Bitplane lane extraction inverts construction, and inserting a
    /// fresh configuration into one lane round-trips without
    /// disturbing any other lane.
    #[test]
    fn packed_lane_extraction_insertion_round_trips(
        q in arb_qubo(12),
        seed in any::<u64>(),
        lane in 0usize..hycim_qubo::LANES,
    ) {
        use hycim_qubo::{PackedReplicaState, LANES};
        use rand::{rngs::StdRng, SeedableRng};
        let n = q.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let initials: Vec<Assignment> =
            (0..LANES).map(|_| Assignment::random(n, &mut rng)).collect();
        let mut ps = PackedReplicaState::new(&q, &initials);
        for (k, x) in initials.iter().enumerate() {
            prop_assert_eq!(&ps.lane_assignment(k), x, "extraction lane {}", k);
        }
        let replacement = Assignment::random(n, &mut rng);
        ps.set_lane_assignment(lane, &replacement);
        prop_assert_eq!(&ps.lane_assignment(lane), &replacement);
        for (k, x) in initials.iter().enumerate() {
            if k != lane {
                prop_assert_eq!(&ps.lane_assignment(k), x, "insertion disturbed lane {}", k);
            }
        }
    }

    /// After any sequence of masked commits, every packed lane's
    /// maintained fields are bit-identical to an independent scalar
    /// `LocalFieldState` replica fed the same flips — including the
    /// per-lane anti-drift refresh schedule.
    #[test]
    fn packed_fields_bit_identical_to_scalar_replicas(
        q in arb_qubo(10),
        seed in any::<u64>(),
        commits in proptest::collection::vec((any::<usize>(), any::<u64>()), 1..60),
        interval in 0usize..6,
    ) {
        use hycim_qubo::{LocalFieldState, PackedReplicaState, LANES};
        use rand::{rngs::StdRng, SeedableRng};
        let n = q.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let initials: Vec<Assignment> =
            (0..LANES).map(|_| Assignment::random(n, &mut rng)).collect();
        let mut ps = PackedReplicaState::new(&q, &initials).with_refresh_interval(interval);
        let mut scalars: Vec<(Assignment, LocalFieldState)> = initials
            .iter()
            .map(|x| (x.clone(), LocalFieldState::new(&q, x).with_refresh_interval(interval)))
            .collect();
        for (raw_i, mask) in commits {
            let i = raw_i % n;
            ps.commit_masked(i, mask);
            for (k, (x, lf)) in scalars.iter_mut().enumerate() {
                if (mask >> k) & 1 == 1 {
                    x.flip(i);
                    lf.commit_flip(x, i);
                }
            }
        }
        for (k, (x, lf)) in scalars.iter().enumerate() {
            prop_assert_eq!(&ps.lane_assignment(k), x, "lane {} configuration", k);
            for i in 0..n {
                prop_assert_eq!(
                    ps.field(i, k).to_bits(),
                    lf.field(i).to_bits(),
                    "lane {} field {}", k, i
                );
            }
        }
    }
}
