use std::fmt;

use crate::{Assignment, QuboError};

/// A linear inequality constraint `Σ wᵢxᵢ ≤ C` with non-negative
/// integer weights and positive integer capacity (paper Eq. 4).
///
/// # Example
///
/// ```
/// use hycim_qubo::{Assignment, LinearConstraint};
///
/// # fn main() -> Result<(), hycim_qubo::QuboError> {
/// let c = LinearConstraint::new(vec![4, 7, 2], 9)?;
/// let x = Assignment::from_bits([true, false, true]);
/// assert!(c.is_satisfied(&x));
/// assert_eq!(c.slack(&x), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinearConstraint {
    weights: Vec<u64>,
    capacity: u64,
}

impl LinearConstraint {
    /// Creates a constraint from item weights and a capacity.
    ///
    /// # Errors
    ///
    /// * [`QuboError::EmptyProblem`] if `weights` is empty.
    /// * [`QuboError::ZeroCapacity`] if `capacity == 0`.
    pub fn new(weights: Vec<u64>, capacity: u64) -> Result<Self, QuboError> {
        if weights.is_empty() {
            return Err(QuboError::EmptyProblem);
        }
        if capacity == 0 {
            return Err(QuboError::ZeroCapacity);
        }
        Ok(Self { weights, capacity })
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Item weights `wᵢ`.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Capacity `C`.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Total weight `Σ wᵢxᵢ` of the selected items.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn load(&self, x: &Assignment) -> u64 {
        assert_eq!(
            x.len(),
            self.dim(),
            "assignment length {} does not match constraint dim {}",
            x.len(),
            self.dim()
        );
        self.weights
            .iter()
            .zip(x.iter())
            .filter(|(_, b)| *b)
            .map(|(w, _)| *w)
            .sum()
    }

    /// Whether `Σ wᵢxᵢ ≤ C` holds.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn is_satisfied(&self, x: &Assignment) -> bool {
        self.load(x) <= self.capacity
    }

    /// Remaining capacity `C − Σ wᵢxᵢ` (saturating at zero when
    /// violated; use [`violation`](Self::violation) for the excess).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn slack(&self, x: &Assignment) -> u64 {
        self.capacity.saturating_sub(self.load(x))
    }

    /// Constraint violation `max(0, Σ wᵢxᵢ − C)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn violation(&self, x: &Assignment) -> u64 {
        self.load(x).saturating_sub(self.capacity)
    }

    /// Total weight of all items `Σ wᵢ`.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Whether the constraint is trivially satisfiable by every
    /// configuration (`Σ wᵢ ≤ C`).
    pub fn is_trivial(&self) -> bool {
        self.total_weight() <= self.capacity
    }

    /// Fraction of the `2ⁿ` configurations that are feasible, computed
    /// by exact dynamic programming over weight sums.
    ///
    /// Cost is O(n·C); intended for analysis and tests, not the solver
    /// hot path. This quantifies the paper's "search space reduction"
    /// claim from the problem side.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_qubo::LinearConstraint;
    /// # fn main() -> Result<(), hycim_qubo::QuboError> {
    /// let c = LinearConstraint::new(vec![4, 7, 2], 9)?;
    /// // 6 of the 8 configurations satisfy the constraint (paper Fig. 5(f)).
    /// assert!((c.feasible_fraction() - 0.75).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn feasible_fraction(&self) -> f64 {
        // counts[s] = number of subsets with total weight exactly s (s ≤ C),
        // tracked as f64 counts scaled by 2^-n to avoid overflow for n=100.
        let cap = self.capacity as usize;
        let mut counts = vec![0.0_f64; cap + 1];
        counts[0] = 1.0;
        let mut scale = 0u32; // total halvings applied
        for &w in &self.weights {
            let w = w as usize;
            // Each item halves the probability mass of each branch.
            if w <= cap {
                for s in (w..=cap).rev() {
                    counts[s] += counts[s - w];
                }
            }
            scale += 1;
            // Rescale lazily to keep values in range: divide by 2 each item.
            for c in counts.iter_mut() {
                *c /= 2.0;
            }
        }
        debug_assert_eq!(scale as usize, self.weights.len());
        counts.iter().sum()
    }
}

impl fmt::Display for LinearConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Σ wᵢxᵢ ≤ {} (n={}, Σw={})",
            self.capacity,
            self.dim(),
            self.total_weight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> LinearConstraint {
        // Paper Fig. 5(f): 4x₁ + 7x₂ + 2x₃ ≤ 9.
        LinearConstraint::new(vec![4, 7, 2], 9).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            LinearConstraint::new(vec![], 3),
            Err(QuboError::EmptyProblem)
        ));
        assert!(matches!(
            LinearConstraint::new(vec![1], 0),
            Err(QuboError::ZeroCapacity)
        ));
    }

    #[test]
    fn fig5f_truth_table() {
        // The paper's worked example: exactly 2 of 8 configurations are
        // infeasible ({x₁,x₂} and {x₁,x₂,x₃}).
        let c = example();
        let mut feasible = 0;
        for bits in 0u32..8 {
            let x = Assignment::from_bits((0..3).map(|i| bits >> i & 1 == 1));
            if c.is_satisfied(&x) {
                feasible += 1;
            }
        }
        assert_eq!(feasible, 6);
    }

    #[test]
    fn load_slack_violation() {
        let c = example();
        let x = Assignment::from_bits([true, true, false]); // load 11 > 9
        assert_eq!(c.load(&x), 11);
        assert!(!c.is_satisfied(&x));
        assert_eq!(c.slack(&x), 0);
        assert_eq!(c.violation(&x), 2);

        let y = Assignment::from_bits([false, true, true]); // load 9 == 9
        assert!(c.is_satisfied(&y));
        assert_eq!(c.slack(&y), 0);
        assert_eq!(c.violation(&y), 0);
    }

    #[test]
    fn trivial_constraint() {
        let c = LinearConstraint::new(vec![1, 1], 10).unwrap();
        assert!(c.is_trivial());
        assert!((c.feasible_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn feasible_fraction_matches_enumeration() {
        let c = LinearConstraint::new(vec![3, 5, 2, 8, 1], 9).unwrap();
        let mut feasible = 0u32;
        for bits in 0u32..32 {
            let x = Assignment::from_bits((0..5).map(|i| bits >> i & 1 == 1));
            if c.is_satisfied(&x) {
                feasible += 1;
            }
        }
        let expected = f64::from(feasible) / 32.0;
        assert!((c.feasible_fraction() - expected).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_capacity() {
        assert!(example().to_string().contains("≤ 9"));
    }
}
