use std::fmt;

use crate::{Assignment, LinearConstraint, QuboError, QuboMatrix};

/// The paper's *inequality-QUBO* form (Sec 3.2, Eq. 6):
///
/// ```text
/// min E = (Σ wᵢxᵢ ≤ C) · xᵀQx
/// ```
///
/// The constraint is kept as a logical gate instead of being folded
/// into the objective, so the search space stays `2ⁿ` and `Q` keeps
/// its original (small) coefficients. For a feasible `x` the energy is
/// `xᵀQx` (negative for profitable selections when `Q` encodes
/// negated profits); for an infeasible `x` the energy is defined as 0,
/// making `E` non-positive at any feasible optimum.
///
/// # Example
///
/// ```
/// use hycim_qubo::{Assignment, InequalityQubo, LinearConstraint, QuboMatrix};
///
/// # fn main() -> Result<(), hycim_qubo::QuboError> {
/// let mut q = QuboMatrix::zeros(2);
/// q.set(0, 0, -5.0);
/// q.set(1, 1, -4.0);
/// let iq = InequalityQubo::new(q, LinearConstraint::new(vec![3, 3], 3)?)?;
/// assert_eq!(iq.energy(&Assignment::from_bits([true, false])), -5.0);
/// // Selecting both items violates the constraint → gated to 0.
/// assert_eq!(iq.energy(&Assignment::from_bits([true, true])), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InequalityQubo {
    objective: QuboMatrix,
    constraint: LinearConstraint,
}

impl InequalityQubo {
    /// Combines an objective matrix and an inequality constraint.
    ///
    /// # Errors
    ///
    /// Returns [`QuboError::DimensionMismatch`] if the matrix dimension
    /// and constraint dimension differ, or [`QuboError::EmptyProblem`]
    /// for zero variables.
    pub fn new(objective: QuboMatrix, constraint: LinearConstraint) -> Result<Self, QuboError> {
        if objective.dim() == 0 {
            return Err(QuboError::EmptyProblem);
        }
        if objective.dim() != constraint.dim() {
            return Err(QuboError::DimensionMismatch {
                expected: objective.dim(),
                found: constraint.dim(),
            });
        }
        Ok(Self {
            objective,
            constraint,
        })
    }

    /// Number of variables (the paper's `n`; the search space is `2ⁿ`).
    pub fn dim(&self) -> usize {
        self.objective.dim()
    }

    /// The objective matrix `Q`.
    pub fn objective(&self) -> &QuboMatrix {
        &self.objective
    }

    /// The inequality constraint.
    pub fn constraint(&self) -> &LinearConstraint {
        &self.constraint
    }

    /// Gated energy `E = (Σwᵢxᵢ ≤ C) · xᵀQx` (paper Eq. 6).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn energy(&self, x: &Assignment) -> f64 {
        if self.constraint.is_satisfied(x) {
            self.objective.energy(x)
        } else {
            0.0
        }
    }

    /// Raw objective energy `xᵀQx` without the feasibility gate.
    ///
    /// This is what the CiM crossbar computes once the inequality
    /// filter has admitted the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn objective_energy(&self, x: &Assignment) -> f64 {
        self.objective.energy(x)
    }

    /// Whether a configuration passes the inequality filter.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn is_feasible(&self, x: &Assignment) -> bool {
        self.constraint.is_satisfied(x)
    }

    /// Exhaustively finds the minimum gated energy and its
    /// configuration. Exponential; for tests and tiny demos only.
    ///
    /// # Panics
    ///
    /// Panics if `self.dim() > 25` (would enumerate > 33M states).
    pub fn brute_force_minimum(&self) -> (Assignment, f64) {
        let n = self.dim();
        assert!(n <= 25, "brute force limited to 25 variables, got {n}");
        let mut best_x = Assignment::zeros(n);
        let mut best_e = self.energy(&best_x);
        for bits in 1u64..(1u64 << n) {
            let x = Assignment::from_bits((0..n).map(|i| bits >> i & 1 == 1));
            let e = self.energy(&x);
            if e < best_e {
                best_e = e;
                best_x = x;
            }
        }
        (best_x, best_e)
    }
}

impl fmt::Display for InequalityQubo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InequalityQubo(n={}, {}, (Q)MAX={:.1})",
            self.dim(),
            self.constraint,
            self.objective.max_abs_element()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of paper Fig. 7(e): a 3-item QKP with
    /// Q = [[10,3,7],[3,6,2],[7,2,8]] (profits; negated for
    /// minimization) and the Fig. 5(f) constraint 4x₁+7x₂+2x₃ ≤ 9.
    fn fig7e() -> InequalityQubo {
        let mut q = QuboMatrix::zeros(3);
        q.set(0, 0, -10.0);
        q.set(1, 1, -6.0);
        q.set(2, 2, -8.0);
        // Off-diagonal profits p_ij appear twice in Σ p_ij x_i x_j (p_ij = p_ji).
        q.set(0, 1, -2.0 * 3.0);
        q.set(0, 2, -2.0 * 7.0);
        q.set(1, 2, -2.0 * 2.0);
        let c = LinearConstraint::new(vec![4, 7, 2], 9).unwrap();
        InequalityQubo::new(q, c).unwrap()
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let q = QuboMatrix::zeros(3);
        let c = LinearConstraint::new(vec![1, 2], 3).unwrap();
        assert!(matches!(
            InequalityQubo::new(q, c),
            Err(QuboError::DimensionMismatch {
                expected: 3,
                found: 2
            })
        ));
    }

    #[test]
    fn empty_problem_rejected() {
        let q = QuboMatrix::zeros(0);
        let c = LinearConstraint::new(vec![1], 1).unwrap();
        assert!(matches!(
            InequalityQubo::new(q, c),
            Err(QuboError::EmptyProblem)
        ));
    }

    #[test]
    fn gate_zeroes_infeasible_energy() {
        let iq = fig7e();
        let infeasible = Assignment::from_bits([true, true, false]); // 11 > 9
        assert_eq!(iq.energy(&infeasible), 0.0);
        // But the raw objective is still very negative.
        assert!(iq.objective_energy(&infeasible) < 0.0);
    }

    #[test]
    fn fig7e_optimum_is_items_0_and_2() {
        // Selecting items 0 and 2: profit 10 + 8 + 2·7 = 32 → E = −32,
        // matching the ≈ −30 optimum of paper Fig. 7(f).
        let iq = fig7e();
        let (x, e) = iq.brute_force_minimum();
        assert_eq!(x, Assignment::from_bits([true, false, true]));
        assert_eq!(e, -32.0);
    }

    #[test]
    fn energy_is_never_positive_at_optimum() {
        let iq = fig7e();
        let (_, e) = iq.brute_force_minimum();
        assert!(e <= 0.0);
    }

    #[test]
    fn display_contains_dim() {
        assert!(fig7e().to_string().contains("n=3"));
    }
}
