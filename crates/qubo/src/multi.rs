use std::fmt;

use crate::{Assignment, InequalityQubo, LinearConstraint, QuboError, QuboMatrix};

/// The multi-constraint generalization of the paper's inequality-QUBO
/// form (Sec 3.2, Eq. 6):
///
/// ```text
/// min E = ∏ₖ (Σᵢ w⁽ᵏ⁾ᵢxᵢ ≤ C⁽ᵏ⁾) · xᵀQx
/// ```
///
/// Every constraint is a logical gate, exactly like the single-filter
/// form: a configuration contributes its objective energy only when it
/// satisfies **all** `k` inequalities, otherwise the energy is 0. In
/// hardware each constraint maps onto one filter of a
/// `FilterBank` — all filters evaluate concurrently in the same
/// 4-phase read, so the bank costs one filter latency regardless of
/// `k`. This is the encoding that makes bin packing (one capacity per
/// bin) and multi-dimensional knapsacks exact on the HyCiM pipeline
/// instead of relying on an aggregate-capacity relaxation.
///
/// The single-constraint [`InequalityQubo`] is the 1-element special
/// case (see the [`From`] conversion).
///
/// # Example
///
/// ```
/// use hycim_qubo::{Assignment, LinearConstraint, MultiInequalityQubo, QuboMatrix};
///
/// # fn main() -> Result<(), hycim_qubo::QuboError> {
/// let mut q = QuboMatrix::zeros(3);
/// q.set(0, 0, -5.0);
/// q.set(1, 1, -4.0);
/// q.set(2, 2, -3.0);
/// let mq = MultiInequalityQubo::new(
///     q,
///     vec![
///         LinearConstraint::new(vec![3, 3, 0], 3)?, // items 0,1 share a budget
///         LinearConstraint::new(vec![0, 2, 2], 3)?, // items 1,2 share another
///     ],
/// )?;
/// assert_eq!(mq.energy(&Assignment::from_bits([true, false, true])), -8.0);
/// // Items 0 and 1 together blow the first budget → gated to 0.
/// assert_eq!(mq.energy(&Assignment::from_bits([true, true, false])), 0.0);
/// assert_eq!(mq.first_violation(&Assignment::from_bits([true, true, false])), Some(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiInequalityQubo {
    objective: QuboMatrix,
    constraints: Vec<LinearConstraint>,
}

impl MultiInequalityQubo {
    /// Combines an objective matrix with a list of inequality
    /// constraints over the same variables.
    ///
    /// # Errors
    ///
    /// * [`QuboError::EmptyProblem`] for zero variables or an empty
    ///   constraint list.
    /// * [`QuboError::DimensionMismatch`] if any constraint dimension
    ///   differs from the matrix dimension.
    pub fn new(
        objective: QuboMatrix,
        constraints: Vec<LinearConstraint>,
    ) -> Result<Self, QuboError> {
        if objective.dim() == 0 || constraints.is_empty() {
            return Err(QuboError::EmptyProblem);
        }
        for c in &constraints {
            if c.dim() != objective.dim() {
                return Err(QuboError::DimensionMismatch {
                    expected: objective.dim(),
                    found: c.dim(),
                });
            }
        }
        Ok(Self {
            objective,
            constraints,
        })
    }

    /// Number of variables (the paper's `n`; the search space is `2ⁿ`).
    pub fn dim(&self) -> usize {
        self.objective.dim()
    }

    /// Number of inequality constraints (the bank size `k`).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The objective matrix `Q`.
    pub fn objective(&self) -> &QuboMatrix {
        &self.objective
    }

    /// The inequality constraints, in filter-bank order.
    pub fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }

    /// Per-constraint loads `Σᵢ w⁽ᵏ⁾ᵢxᵢ`, in constraint order — the
    /// quantities the SA loop tracks incrementally and feeds to the
    /// bank's fast path.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn loads(&self, x: &Assignment) -> Vec<u64> {
        self.constraints.iter().map(|c| c.load(x)).collect()
    }

    /// Whether every constraint admits the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn is_feasible(&self, x: &Assignment) -> bool {
        self.constraints.iter().all(|c| c.is_satisfied(x))
    }

    /// Index of the first violated constraint, if any (mirrors
    /// `BankDecision::first_violation` on the hardware side).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn first_violation(&self, x: &Assignment) -> Option<usize> {
        self.constraints.iter().position(|c| !c.is_satisfied(x))
    }

    /// Gated energy `E = ∏ₖ(Σw⁽ᵏ⁾ᵢxᵢ ≤ C⁽ᵏ⁾) · xᵀQx`: the objective
    /// when all constraints hold, 0 otherwise (paper Eq. 6 with a
    /// product of indicator gates).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn energy(&self, x: &Assignment) -> f64 {
        if self.is_feasible(x) {
            self.objective.energy(x)
        } else {
            0.0
        }
    }

    /// Raw objective energy `xᵀQx` without the feasibility gates —
    /// what the CiM crossbar computes once the filter bank has
    /// admitted the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn objective_energy(&self, x: &Assignment) -> f64 {
        self.objective.energy(x)
    }

    /// The single-constraint form, when this model has exactly one
    /// constraint (`None` otherwise). The inverse of the [`From`]
    /// conversion.
    pub fn as_single(&self) -> Option<InequalityQubo> {
        if self.constraints.len() != 1 {
            return None;
        }
        Some(
            InequalityQubo::new(self.objective.clone(), self.constraints[0].clone())
                .expect("validated at construction"),
        )
    }

    /// Exhaustively finds the minimum gated energy and its
    /// configuration. Exponential; for tests and tiny demos only.
    ///
    /// # Panics
    ///
    /// Panics if `self.dim() > 25` (would enumerate > 33M states).
    pub fn brute_force_minimum(&self) -> (Assignment, f64) {
        let n = self.dim();
        assert!(n <= 25, "brute force limited to 25 variables, got {n}");
        let mut best_x = Assignment::zeros(n);
        let mut best_e = self.energy(&best_x);
        for bits in 1u64..(1u64 << n) {
            let x = Assignment::from_bits((0..n).map(|i| bits >> i & 1 == 1));
            let e = self.energy(&x);
            if e < best_e {
                best_e = e;
                best_x = x;
            }
        }
        (best_x, best_e)
    }
}

/// A single-constraint inequality-QUBO is the 1-element bank.
impl From<InequalityQubo> for MultiInequalityQubo {
    fn from(iq: InequalityQubo) -> Self {
        let constraint = iq.constraint().clone();
        Self {
            objective: iq.objective().clone(),
            constraints: vec![constraint],
        }
    }
}

impl fmt::Display for MultiInequalityQubo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MultiInequalityQubo(n={}, k={}, (Q)MAX={:.1})",
            self.dim(),
            self.num_constraints(),
            self.objective.max_abs_element()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two overlapping budgets over 3 items with joint profits.
    fn example() -> MultiInequalityQubo {
        let mut q = QuboMatrix::zeros(3);
        q.set(0, 0, -10.0);
        q.set(1, 1, -6.0);
        q.set(2, 2, -8.0);
        q.set(0, 2, -14.0);
        MultiInequalityQubo::new(
            q,
            vec![
                LinearConstraint::new(vec![4, 7, 2], 9).unwrap(),
                LinearConstraint::new(vec![1, 1, 1], 2).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let q = QuboMatrix::zeros(3);
        assert!(matches!(
            MultiInequalityQubo::new(q.clone(), vec![]),
            Err(QuboError::EmptyProblem)
        ));
        assert!(matches!(
            MultiInequalityQubo::new(
                QuboMatrix::zeros(0),
                vec![LinearConstraint::new(vec![1], 1).unwrap()]
            ),
            Err(QuboError::EmptyProblem)
        ));
        assert!(matches!(
            MultiInequalityQubo::new(q, vec![LinearConstraint::new(vec![1, 2], 3).unwrap()]),
            Err(QuboError::DimensionMismatch {
                expected: 3,
                found: 2
            })
        ));
    }

    #[test]
    fn all_gates_must_pass() {
        let mq = example();
        // Items 0 and 2: first constraint OK (6 ≤ 9), second OK (2 ≤ 2).
        let ok = Assignment::from_bits([true, false, true]);
        assert!(mq.is_feasible(&ok));
        assert_eq!(mq.energy(&ok), -32.0);
        assert_eq!(mq.first_violation(&ok), None);
        // All three items: first constraint broken (13 > 9) and the
        // cardinality constraint too (3 > 2).
        let over = Assignment::ones_vec(3);
        assert!(!mq.is_feasible(&over));
        assert_eq!(mq.energy(&over), 0.0);
        assert_eq!(mq.first_violation(&over), Some(0));
        assert!(mq.objective_energy(&over) < 0.0);
        // Items 1 and 2 pass the weight budget (9 ≤ 9) and the
        // cardinality budget (2 ≤ 2).
        let tight = Assignment::from_bits([false, true, true]);
        assert!(mq.is_feasible(&tight));
        assert_eq!(mq.energy(&tight), -14.0);
    }

    #[test]
    fn loads_report_per_constraint() {
        let mq = example();
        assert_eq!(
            mq.loads(&Assignment::from_bits([true, true, false])),
            [11, 2]
        );
        assert_eq!(mq.num_constraints(), 2);
        assert_eq!(mq.dim(), 3);
    }

    #[test]
    fn brute_force_respects_every_gate() {
        let mq = example();
        let (x, e) = mq.brute_force_minimum();
        assert!(mq.is_feasible(&x));
        assert_eq!(e, -32.0);
        assert_eq!(x, Assignment::from_bits([true, false, true]));
    }

    #[test]
    fn single_constraint_round_trips() {
        let iq = InequalityQubo::new(
            QuboMatrix::zeros(2),
            LinearConstraint::new(vec![1, 2], 2).unwrap(),
        )
        .unwrap();
        let mq = MultiInequalityQubo::from(iq.clone());
        assert_eq!(mq.num_constraints(), 1);
        assert_eq!(mq.as_single(), Some(iq));
        assert!(example().as_single().is_none());
    }

    #[test]
    fn single_form_agrees_with_multi_form() {
        let iq = InequalityQubo::new(
            {
                let mut q = QuboMatrix::zeros(3);
                q.set(0, 0, -3.0);
                q.set(1, 2, -5.0);
                q
            },
            LinearConstraint::new(vec![4, 7, 2], 9).unwrap(),
        )
        .unwrap();
        let mq = MultiInequalityQubo::from(iq.clone());
        for bits in 0u64..8 {
            let x = Assignment::from_bits((0..3).map(|i| bits >> i & 1 == 1));
            assert_eq!(mq.energy(&x), iq.energy(&x));
            assert_eq!(mq.is_feasible(&x), iq.is_feasible(&x));
        }
    }

    #[test]
    fn display_mentions_constraint_count() {
        assert!(example().to_string().contains("k=2"));
    }
}
