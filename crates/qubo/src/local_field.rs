//! Local-field incremental energy engine.
//!
//! The SA loop probes one move per iteration; with a dense
//! [`QuboMatrix::flip_delta`] every probe pays an O(n) row scan even on
//! structurally sparse problems (max-cut, spin glass, coloring). The
//! standard annealer optimization — maintained *local fields* — turns
//! the probe into an O(1) lookup:
//!
//! > `h_i = Q_ii + Σ_{j≠i} Q_ij·x_j`, so the energy change of flipping
//! > bit `i` is `+h_i` (0→1) or `−h_i` (1→0).
//!
//! [`LocalFieldState`] precomputes CSR-style per-variable neighbor
//! lists from the matrix once, then keeps every `h_i` current with an
//! O(deg(i)) neighbor update per *committed* flip. Probes (the hot
//! path — most SA proposals are rejected or vetoed) never touch the
//! matrix at all.
//!
//! # Float drift and the periodic refresh
//!
//! The fields are maintained by adding and subtracting coefficients,
//! so for non-integer matrices they can drift from the exact sums by
//! accumulated rounding (≈ machine epsilon per commit). To bound the
//! drift, the state recomputes every field from scratch once per
//! [`refresh_interval`](LocalFieldState::with_refresh_interval)
//! commits (an O(nnz) pass, amortized to noise). For matrices whose
//! coefficients and partial sums are exactly representable — every
//! integer-valued problem family in `hycim-cop` — the incremental
//! fields are *bit-identical* to the dense row scans at all times, so
//! annealing trajectories do not change when switching paths.

use crate::{Assignment, QuboMatrix};

/// CSR-style symmetric neighbor lists of a QUBO matrix: the diagonal
/// plus, per row, the off-diagonal structural nonzeros in ascending
/// column order. Built once from the triangular matrix and shared by
/// [`LocalFieldState`] (one replica) and
/// [`PackedReplicaState`](crate::PackedReplicaState) (64 bit-packed
/// replicas), so both walk *exactly* the same couplings in the same
/// order — the property the packed-vs-scalar bit-identity laws rest
/// on.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrNeighbors {
    /// Diagonal (linear) coefficients `Q_ii`.
    pub diag: Vec<f64>,
    /// Row offsets into `idx`/`val`; length `n + 1`.
    pub offsets: Vec<usize>,
    /// Column indices of each row's off-diagonal nonzeros, ascending.
    pub idx: Vec<usize>,
    /// Coupling `Q_ij` for the matching entry of `idx`.
    pub val: Vec<f64>,
}

impl CsrNeighbors {
    /// Builds the neighbor lists from the triangular matrix. O(n + nnz).
    pub fn build(q: &QuboMatrix) -> Self {
        let n = q.dim();
        let mut diag = vec![0.0; n];
        let mut degree = vec![0usize; n];
        for (i, j, _) in q.iter_nonzero() {
            if i == j {
                continue;
            }
            degree[i] += 1;
            degree[j] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let nnz = *offsets.last().unwrap();
        let mut idx = vec![0usize; nnz];
        let mut val = vec![0.0; nnz];
        let mut fill = offsets.clone();
        for (i, j, v) in q.iter_nonzero() {
            if i == j {
                diag[i] = v;
                continue;
            }
            // `iter_nonzero` walks (i, j) row-major with i <= j, so each
            // row's entries land in ascending column order: columns
            // below the row index arrive first (from their own rows),
            // columns above afterwards.
            idx[fill[i]] = j;
            val[fill[i]] = v;
            fill[i] += 1;
            idx[fill[j]] = i;
            val[fill[j]] = v;
            fill[j] += 1;
        }
        debug_assert!((0..n).all(|i| idx[offsets[i]..offsets[i + 1]]
            .windows(2)
            .all(|w| w[0] < w[1])));
        Self {
            diag,
            offsets,
            idx,
            val,
        }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.diag.len()
    }

    /// Structural off-diagonal degree of variable `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }
}

/// Default number of committed flips between full field recomputes.
///
/// Each refresh is O(nnz); at the default interval the amortized cost
/// per commit is negligible while worst-case drift stays below
/// `interval · ε · max|Q_ij|` (≈ 1e-10 for coefficient scale 100).
pub const DEFAULT_REFRESH_INTERVAL: usize = 8192;

/// Maintained local fields over a QUBO matrix: O(1) flip deltas, O(1)
/// pair deltas (given the coupling), O(deg(i)) commits.
///
/// The state does not own the configuration; callers pass their
/// `Assignment` so existing state structs keep their layout. The
/// contract is:
///
/// 1. build with the *current* configuration ([`LocalFieldState::new`]),
/// 2. read deltas with [`flip_delta`](Self::flip_delta) /
///    [`pair_delta`](Self::pair_delta) *before* mutating the
///    configuration,
/// 3. after flipping bit(s) in the configuration, notify with
///    [`commit_flip`](Self::commit_flip) /
///    [`commit_pair`](Self::commit_pair) (passing the *post-flip*
///    configuration).
///
/// # Example
///
/// ```
/// use hycim_qubo::{Assignment, LocalFieldState, QuboMatrix};
///
/// let mut q = QuboMatrix::zeros(3);
/// q.set(0, 0, -4.0);
/// q.set(0, 2, 6.0);
/// let mut x = Assignment::zeros(3);
/// let mut lf = LocalFieldState::new(&q, &x);
///
/// assert_eq!(lf.flip_delta(&x, 0), -4.0);     // O(1) probe
/// x.flip(0);
/// lf.commit_flip(&x, 0);                      // O(deg(0)) update
/// assert_eq!(lf.flip_delta(&x, 2), 6.0);      // feels bit 0 via h₂
/// assert_eq!(lf.flip_delta(&x, 0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LocalFieldState {
    n: usize,
    /// Diagonal (linear) coefficients `Q_ii`.
    diag: Vec<f64>,
    /// CSR row offsets into `neighbor_idx`/`neighbor_val`; length `n+1`.
    offsets: Vec<usize>,
    /// Column indices of the structural off-diagonal nonzeros of each
    /// row, ascending.
    neighbor_idx: Vec<usize>,
    /// Coupling `Q_ij` for the matching entry of `neighbor_idx`.
    neighbor_val: Vec<f64>,
    /// Maintained fields `h_i = Q_ii + Σ_{j≠i} Q_ij·x_j`.
    fields: Vec<f64>,
    /// Commits since the last full recompute.
    commits: usize,
    /// Commits between full recomputes; `0` disables refreshing.
    refresh_interval: usize,
}

impl LocalFieldState {
    /// Builds the neighbor lists and initial fields for configuration
    /// `x`. O(n + nnz).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != q.dim()`.
    pub fn new(q: &QuboMatrix, x: &Assignment) -> Self {
        assert_eq!(
            x.len(),
            q.dim(),
            "assignment length {} does not match dim {}",
            x.len(),
            q.dim()
        );
        let n = q.dim();
        let csr = CsrNeighbors::build(q);
        let mut state = Self {
            n,
            diag: csr.diag,
            offsets: csr.offsets,
            neighbor_idx: csr.idx,
            neighbor_val: csr.val,
            fields: vec![0.0; n],
            commits: 0,
            refresh_interval: DEFAULT_REFRESH_INTERVAL,
        };
        state.refresh(x);
        state
    }

    /// Sets the number of commits between full field recomputes
    /// (`0` = never refresh). See the module docs for the drift bound.
    pub fn with_refresh_interval(mut self, interval: usize) -> Self {
        self.refresh_interval = interval;
        self
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Structural degree of variable `i` (off-diagonal nonzeros in its
    /// row — the commit cost).
    pub fn degree(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The maintained field `h_i = Q_ii + Σ_{j≠i} Q_ij·x_j`.
    pub fn field(&self, i: usize) -> f64 {
        self.fields[i]
    }

    /// Commits since the last full recompute (diagnostic).
    pub fn commits_since_refresh(&self) -> usize {
        self.commits
    }

    /// Energy change of flipping bit `i` — an O(1) lookup: `+h_i` for a
    /// 0→1 flip, `−h_i` for 1→0.
    pub fn flip_delta(&self, x: &Assignment, i: usize) -> f64 {
        if x.get(i) {
            -self.fields[i]
        } else {
            self.fields[i]
        }
    }

    /// Energy change of flipping bits `i` and `j` together:
    /// `Δᵢ + Δⱼ + Q_ij·dᵢ·dⱼ` with `d = +1` for 0→1 and `−1`
    /// otherwise. The coupling lookup is a binary search of row `i`'s
    /// neighbor list — O(log deg(i)).
    ///
    /// # Panics
    ///
    /// Panics if `i == j`.
    pub fn pair_delta(&self, x: &Assignment, i: usize, j: usize) -> f64 {
        assert_ne!(i, j, "pair delta needs two distinct bits");
        let di = if x.get(i) { -1.0 } else { 1.0 };
        let dj = if x.get(j) { -1.0 } else { 1.0 };
        self.flip_delta(x, i) + self.flip_delta(x, j) + self.coupling(i, j) * di * dj
    }

    /// The coupling `Q_ij` (order-insensitive; `Q_ii` for `i == j`)
    /// from the CSR rows, by binary search.
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.diag[i];
        }
        let row = &self.neighbor_idx[self.offsets[i]..self.offsets[i + 1]];
        match row.binary_search(&j) {
            Ok(k) => self.neighbor_val[self.offsets[i] + k],
            Err(_) => 0.0,
        }
    }

    /// Applies a committed flip of bit `i` to the fields. `x` must be
    /// the configuration *after* the flip. O(deg(i)).
    pub fn commit_flip(&mut self, x: &Assignment, i: usize) {
        self.apply(x, i);
        self.note_commit(x);
    }

    /// Applies a committed pair flip of bits `i` and `j`. `x` must be
    /// the configuration *after* both flips. O(deg(i) + deg(j)); the
    /// cross-coupling cancels because `h` never includes a variable's
    /// own value.
    pub fn commit_pair(&mut self, x: &Assignment, i: usize, j: usize) {
        self.apply(x, i);
        self.apply(x, j);
        self.note_commit(x);
    }

    /// Recomputes every field from scratch — O(n + nnz). Called
    /// automatically every `refresh_interval` commits; public so
    /// callers can re-sync after mutating the configuration outside
    /// the commit API.
    pub fn refresh(&mut self, x: &Assignment) {
        for i in 0..self.n {
            let mut h = self.diag[i];
            for k in self.offsets[i]..self.offsets[i + 1] {
                if x.get(self.neighbor_idx[k]) {
                    h += self.neighbor_val[k];
                }
            }
            self.fields[i] = h;
        }
        self.commits = 0;
    }

    fn apply(&mut self, x: &Assignment, i: usize) {
        let sign = if x.get(i) { 1.0 } else { -1.0 };
        for k in self.offsets[i]..self.offsets[i + 1] {
            self.fields[self.neighbor_idx[k]] += sign * self.neighbor_val[k];
        }
    }

    fn note_commit(&mut self, x: &Assignment) {
        self.commits += 1;
        if self.refresh_interval > 0 && self.commits >= self.refresh_interval {
            self.refresh(x);
        }
    }
}

/// The flip-delta backend of an annealing state: either the dense O(n)
/// row scan of [`QuboMatrix::flip_delta`] or the maintained
/// [`LocalFieldState`] (the default everywhere).
///
/// Keeping the dense path constructible is what lets the benchmark
/// harness (`hotpath_report`) and the equivalence proptests compare
/// the two on identical problems; production states never pay for it
/// (the `Dense` variant is zero-sized — the matrix stays owned by the
/// state).
///
/// All methods take the matrix by reference so the state remains the
/// single owner; `commit_*` must be called with the *post-flip*
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaEngine {
    /// Dense O(n) row scans straight off the matrix.
    Dense,
    /// Maintained local fields: O(1) probes, O(deg) commits.
    LocalField(LocalFieldState),
}

impl DeltaEngine {
    /// Builds the default (local-field) backend for matrix `q` at
    /// configuration `x`.
    pub fn local(q: &QuboMatrix, x: &Assignment) -> Self {
        DeltaEngine::LocalField(LocalFieldState::new(q, x))
    }

    /// The dense fallback backend.
    pub fn dense() -> Self {
        DeltaEngine::Dense
    }

    /// Whether this is the maintained local-field backend.
    pub fn is_local(&self) -> bool {
        matches!(self, DeltaEngine::LocalField(_))
    }

    /// Energy change of flipping bit `i` — O(1) on the local-field
    /// backend, O(n) dense.
    pub fn flip_delta(&self, q: &QuboMatrix, x: &Assignment, i: usize) -> f64 {
        match self {
            DeltaEngine::Dense => q.flip_delta(x, i),
            DeltaEngine::LocalField(lf) => lf.flip_delta(x, i),
        }
    }

    /// Energy change of flipping bits `i` and `j` together. The
    /// coupling is read from the matrix (O(1) in its triangular
    /// storage), so both backends share the exact same cross term.
    ///
    /// # Panics
    ///
    /// Panics if `i == j`.
    pub fn pair_delta(&self, q: &QuboMatrix, x: &Assignment, i: usize, j: usize) -> f64 {
        assert_ne!(i, j, "pair delta needs two distinct bits");
        let di = if x.get(i) { -1.0 } else { 1.0 };
        let dj = if x.get(j) { -1.0 } else { 1.0 };
        self.flip_delta(q, x, i) + self.flip_delta(q, x, j) + q.get(i, j) * di * dj
    }

    /// Notifies the backend of a committed flip; `x` is the
    /// configuration *after* the flip. No-op on the dense backend.
    pub fn commit_flip(&mut self, x: &Assignment, i: usize) {
        if let DeltaEngine::LocalField(lf) = self {
            lf.commit_flip(x, i);
        }
    }

    /// Notifies the backend of a committed pair flip; `x` is the
    /// configuration *after* both flips. No-op on the dense backend.
    pub fn commit_pair(&mut self, x: &Assignment, i: usize, j: usize) {
        if let DeltaEngine::LocalField(lf) = self {
            lf.commit_pair(x, i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse_qubo(n: usize, density: f64, seed: u64) -> QuboMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = QuboMatrix::zeros(n);
        for i in 0..n {
            q.set(i, i, rng.random_range(-10.0..10.0));
            for j in (i + 1)..n {
                if rng.random_bool(density) {
                    q.set(i, j, rng.random_range(-10.0..10.0));
                }
            }
        }
        q
    }

    #[test]
    fn fields_match_dense_deltas_on_build() {
        let q = random_sparse_qubo(20, 0.3, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let x = Assignment::random(20, &mut rng);
            let lf = LocalFieldState::new(&q, &x);
            for i in 0..20 {
                assert!(
                    (lf.flip_delta(&x, i) - q.flip_delta(&x, i)).abs() < 1e-9,
                    "field mismatch at {i}"
                );
            }
        }
    }

    #[test]
    fn commits_track_a_random_walk() {
        let q = random_sparse_qubo(16, 0.4, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut x = Assignment::random(16, &mut rng);
        let mut lf = LocalFieldState::new(&q, &x);
        let mut energy = q.energy(&x);
        for step in 0..500 {
            let i = rng.random_range(0..16);
            let delta = lf.flip_delta(&x, i);
            assert!(
                (delta - q.flip_delta(&x, i)).abs() < 1e-9,
                "probe diverged at step {step}"
            );
            x.flip(i);
            lf.commit_flip(&x, i);
            energy += delta;
            assert!(
                (energy - q.energy(&x)).abs() < 1e-8,
                "energy diverged at step {step}"
            );
        }
    }

    #[test]
    fn pair_deltas_match_sequential_flips() {
        let q = random_sparse_qubo(12, 0.5, 5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let mut x = Assignment::random(12, &mut rng);
            let i = rng.random_range(0..12);
            let j = (i + 1 + rng.random_range(0..11usize)) % 12;
            let mut lf = LocalFieldState::new(&q, &x);
            let before = q.energy(&x);
            let delta = lf.pair_delta(&x, i, j);
            x.flip(i);
            x.flip(j);
            lf.commit_pair(&x, i, j);
            let after = q.energy(&x);
            assert!(
                (after - before - delta).abs() < 1e-9,
                "pair delta mismatch for ({i}, {j})"
            );
            // Fields stay consistent after the pair commit.
            for k in 0..12 {
                assert!((lf.flip_delta(&x, k) - q.flip_delta(&x, k)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn coupling_lookup_matches_matrix() {
        let q = random_sparse_qubo(10, 0.4, 7);
        let x = Assignment::zeros(10);
        let lf = LocalFieldState::new(&q, &x);
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(lf.coupling(i, j), q.get(i, j), "coupling ({i}, {j})");
            }
        }
    }

    #[test]
    fn refresh_interval_triggers_and_resyncs() {
        let q = random_sparse_qubo(8, 0.6, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let mut x = Assignment::zeros(8);
        let mut lf = LocalFieldState::new(&q, &x).with_refresh_interval(4);
        for step in 0..20 {
            let i = rng.random_range(0..8);
            x.flip(i);
            lf.commit_flip(&x, i);
            assert!(
                lf.commits_since_refresh() < 4,
                "refresh did not fire by step {step}"
            );
        }
        // After a refresh the fields are the exact sums.
        for i in 0..8 {
            assert!((lf.flip_delta(&x, i) - q.flip_delta(&x, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn degrees_count_structural_neighbors() {
        let mut q = QuboMatrix::zeros(4);
        q.set(0, 1, 1.0);
        q.set(0, 3, 2.0);
        q.set(2, 2, 5.0); // diagonal only — no neighbors
        let lf = LocalFieldState::new(&q, &Assignment::zeros(4));
        assert_eq!(lf.degree(0), 2);
        assert_eq!(lf.degree(1), 1);
        assert_eq!(lf.degree(2), 0);
        assert_eq!(lf.degree(3), 1);
    }

    #[test]
    fn delta_engine_backends_agree() {
        let q = random_sparse_qubo(15, 0.3, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let mut x = Assignment::random(15, &mut rng);
        let mut local = DeltaEngine::local(&q, &x);
        let mut dense = DeltaEngine::dense();
        assert!(local.is_local());
        assert!(!dense.is_local());
        for _ in 0..200 {
            let i = rng.random_range(0..15);
            if rng.random_bool(0.3) {
                let j = (i + 1 + rng.random_range(0..14usize)) % 15;
                let dl = local.pair_delta(&q, &x, i, j);
                let dd = dense.pair_delta(&q, &x, i, j);
                assert!((dl - dd).abs() < 1e-9);
                x.flip(i);
                x.flip(j);
                local.commit_pair(&x, i, j);
                dense.commit_pair(&x, i, j);
            } else {
                let dl = local.flip_delta(&q, &x, i);
                let dd = dense.flip_delta(&q, &x, i);
                assert!((dl - dd).abs() < 1e-9);
                x.flip(i);
                local.commit_flip(&x, i);
                dense.commit_flip(&x, i);
            }
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn pair_delta_rejects_equal_bits() {
        let q = QuboMatrix::zeros(3);
        let x = Assignment::zeros(3);
        let lf = LocalFieldState::new(&q, &x);
        let _ = lf.pair_delta(&x, 1, 1);
    }
}
