use crate::{Assignment, QuboError, QuboMatrix};

/// An Ising model `H(σ) = Σ_{i<j} J_ij σᵢσⱼ + Σ hᵢσᵢ` with
/// `σᵢ ∈ {−1, +1}` (paper Eq. 1).
///
/// QUBO and Ising forms are equivalent through `σᵢ = 1 − 2xᵢ`
/// (paper Sec 2.1); the conversions here preserve energies up to the
/// recorded constant [`offset`](IsingModel::offset).
///
/// # Example
///
/// ```
/// use hycim_qubo::{Assignment, IsingModel, QuboMatrix};
///
/// let mut q = QuboMatrix::zeros(2);
/// q.set(0, 0, 1.0);
/// q.set(0, 1, -2.0);
/// let ising = IsingModel::from_qubo(&q);
/// let x = Assignment::from_bits([true, false]);
/// let e_qubo = q.energy(&x);
/// let e_ising = ising.energy_of_assignment(&x);
/// assert!((e_qubo - e_ising).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IsingModel {
    n: usize,
    /// Couplings J_ij stored for i < j, row-major upper triangle
    /// (diagonal excluded: σᵢ² = 1 contributes only to the offset).
    couplings: Vec<f64>,
    /// Self-couplings (local fields) hᵢ.
    fields: Vec<f64>,
    /// Constant energy offset relative to the originating QUBO form.
    offset: f64,
}

impl IsingModel {
    /// Creates a zero Ising model of `n` spins.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            couplings: vec![0.0; n.saturating_sub(1) * n / 2],
            fields: vec![0.0; n],
            offset: 0.0,
        }
    }

    fn pair_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Number of spins.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Constant energy offset carried over from QUBO conversion.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Coupling `J_ij` (order-insensitive; zero for `i == j`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.couplings[self.pair_index(a, b)]
    }

    /// Sets the coupling `J_ij`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or `i == j` (use
    /// [`set_field`](Self::set_field) for self-couplings).
    pub fn set_coupling(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        assert_ne!(i, j, "diagonal couplings are fields; use set_field");
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let idx = self.pair_index(a, b);
        self.couplings[idx] = value;
    }

    /// Local field `hᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn field(&self, i: usize) -> f64 {
        self.fields[i]
    }

    /// Sets the local field `hᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set_field(&mut self, i: usize, value: f64) {
        self.fields[i] = value;
    }

    /// Ising energy of a spin configuration `σ ∈ {−1, +1}ⁿ`, including
    /// the offset.
    ///
    /// # Panics
    ///
    /// Panics if `spins.len() != self.dim()` or any spin is not `±1`.
    pub fn energy(&self, spins: &[i8]) -> f64 {
        assert_eq!(spins.len(), self.n, "spin count mismatch");
        assert!(
            spins.iter().all(|&s| s == 1 || s == -1),
            "spins must be +1 or -1"
        );
        let mut e = self.offset;
        for i in 0..self.n {
            e += self.fields[i] * f64::from(spins[i]);
            for j in (i + 1)..self.n {
                e += self.couplings[self.pair_index(i, j)]
                    * f64::from(spins[i])
                    * f64::from(spins[j]);
            }
        }
        e
    }

    /// Ising energy of a binary assignment via `σᵢ = 1 − 2xᵢ`.
    ///
    /// Equals the QUBO energy of the originating matrix exactly.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn energy_of_assignment(&self, x: &Assignment) -> f64 {
        let spins: Vec<i8> = x.iter().map(|b| if b { -1 } else { 1 }).collect();
        self.energy(&spins)
    }

    /// Converts a QUBO matrix into the equivalent Ising model.
    ///
    /// Uses `xᵢ = (1 − σᵢ)/2`, so
    /// `J_ij = Q_ij/4`, `hᵢ = −(Q_ii + Σ_{j≠i} Q_ij/2)/2`, with the
    /// remaining constant absorbed into [`offset`](Self::offset).
    pub fn from_qubo(q: &QuboMatrix) -> Self {
        let n = q.dim();
        let mut ising = IsingModel::zeros(n);
        let mut offset = 0.0;
        for (i, j, v) in q.iter_nonzero() {
            if i == j {
                // Q_ii x_i = Q_ii (1-σ)/2
                ising.fields[i] -= v / 2.0;
                offset += v / 2.0;
            } else {
                // Q_ij x_i x_j = Q_ij (1-σi)(1-σj)/4
                let idx = ising.pair_index(i, j);
                ising.couplings[idx] += v / 4.0;
                ising.fields[i] -= v / 4.0;
                ising.fields[j] -= v / 4.0;
                offset += v / 4.0;
            }
        }
        ising.offset = offset;
        ising
    }

    /// Converts this Ising model back to a QUBO matrix, discarding the
    /// offset (returned separately).
    ///
    /// # Errors
    ///
    /// Returns [`QuboError::EmptyProblem`] for zero-spin models.
    pub fn to_qubo(&self) -> Result<(QuboMatrix, f64), QuboError> {
        if self.n == 0 {
            return Err(QuboError::EmptyProblem);
        }
        // σᵢ = 1 − 2xᵢ: J σᵢσⱼ = J(1-2xᵢ)(1-2xⱼ) = J - 2Jxᵢ - 2Jxⱼ + 4Jxᵢxⱼ
        //               h σᵢ   = h − 2hxᵢ
        let mut q = QuboMatrix::zeros(self.n);
        let mut constant = self.offset;
        for i in 0..self.n {
            q.add(i, i, -2.0 * self.fields[i]);
            constant += self.fields[i];
            for j in (i + 1)..self.n {
                let jij = self.couplings[self.pair_index(i, j)];
                if jij != 0.0 {
                    q.add(i, j, 4.0 * jij);
                    q.add(i, i, -2.0 * jij);
                    q.add(j, j, -2.0 * jij);
                    constant += jij;
                }
            }
        }
        Ok((q, constant))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_qubo(n: usize, seed: u64) -> QuboMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = QuboMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                if rng.random_bool(0.7) {
                    q.set(i, j, rng.random_range(-5.0..5.0));
                }
            }
        }
        q
    }

    #[test]
    fn qubo_to_ising_preserves_energy() {
        let q = random_qubo(7, 21);
        let ising = IsingModel::from_qubo(&q);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..30 {
            let x = Assignment::random(7, &mut rng);
            assert!(
                (q.energy(&x) - ising.energy_of_assignment(&x)).abs() < 1e-9,
                "energy mismatch for {x}"
            );
        }
    }

    #[test]
    fn ising_roundtrip_preserves_energy() {
        let q = random_qubo(6, 33);
        let ising = IsingModel::from_qubo(&q);
        let (q2, constant) = ising.to_qubo().unwrap();
        let mut rng = StdRng::seed_from_u64(34);
        for _ in 0..30 {
            let x = Assignment::random(6, &mut rng);
            assert!(
                (q.energy(&x) - (q2.energy(&x) + constant)).abs() < 1e-9,
                "roundtrip mismatch"
            );
        }
    }

    #[test]
    fn spin_energy_definition() {
        let mut ising = IsingModel::zeros(2);
        ising.set_coupling(0, 1, 2.0);
        ising.set_field(0, -1.0);
        // σ = (+1, −1): E = 2·(+1)(−1) + (−1)(+1) = −3
        assert_eq!(ising.energy(&[1, -1]), -3.0);
    }

    #[test]
    #[should_panic(expected = "spins must be")]
    fn rejects_invalid_spin() {
        let ising = IsingModel::zeros(1);
        let _ = ising.energy(&[0]);
    }

    #[test]
    #[should_panic(expected = "fields")]
    fn rejects_diagonal_coupling() {
        let mut ising = IsingModel::zeros(2);
        ising.set_coupling(1, 1, 1.0);
    }

    #[test]
    fn empty_model_to_qubo_errs() {
        let ising = IsingModel::zeros(0);
        assert!(matches!(ising.to_qubo(), Err(QuboError::EmptyProblem)));
    }

    #[test]
    fn coupling_accessors_are_order_insensitive() {
        let mut ising = IsingModel::zeros(3);
        ising.set_coupling(2, 0, 1.25);
        assert_eq!(ising.coupling(0, 2), 1.25);
        assert_eq!(ising.coupling(2, 0), 1.25);
        assert_eq!(ising.coupling(1, 1), 0.0);
    }
}
