//! QUBO algebra substrate for the HyCiM reproduction.
//!
//! This crate provides the mathematical layer the paper builds on:
//!
//! * [`Assignment`] — a binary variable configuration `x ∈ {0,1}ⁿ`.
//! * [`QuboMatrix`] — an upper-triangular QUBO matrix `Q` with energy
//!   `E(x) = xᵀQx` (paper Eq. 2) and O(n) incremental flip deltas.
//! * [`LocalFieldState`] / [`DeltaEngine`] — maintained local fields
//!   `h_i = Q_ii + Σ Q_ij·x_j` over CSR neighbor lists: O(1) flip
//!   probes and O(deg(i)) commits, the hot-path backend of every
//!   annealing state (see [`local_field`]).
//! * [`PackedReplicaState`] — 64 replicas bit-packed into `u64` spin
//!   bitplanes per variable with per-lane maintained fields, so one
//!   CSR sweep advances all [`LANES`] replicas word-parallel (see
//!   [`packed`]); lane `k` stays bit-identical to an independent
//!   scalar [`LocalFieldState`] replica.
//! * [`IsingModel`] — the equivalent spin model (paper Eq. 1) and the
//!   exact conversions between the two forms.
//! * [`LinearConstraint`] — an inequality constraint `Σ wᵢxᵢ ≤ C`
//!   (paper Eq. 4).
//! * [`InequalityQubo`] — the paper's novel *inequality-QUBO* form
//!   `min E = (Σ wᵢxᵢ ≤ C) · xᵀQx` (paper Eq. 6, Sec 3.2).
//! * [`MultiInequalityQubo`] — the multi-constraint generalization
//!   `min E = ∏ₖ(Σ w⁽ᵏ⁾ᵢxᵢ ≤ C⁽ᵏ⁾) · xᵀQx`, one gate per filter of a
//!   hardware filter bank (bin packing, multi-dimensional knapsacks).
//! * [`dqubo`] — the conventional *D-QUBO* transformation that embeds
//!   the constraint as a quadratic penalty over auxiliary variables
//!   (paper Fig. 1(b), Sec 2.1), used as the baseline.
//! * [`quant`] — quantization analysis: largest matrix element and the
//!   crossbar bit width it implies (paper Sec 4.2, Fig. 9(a)).
//!
//! # Example
//!
//! ```
//! use hycim_qubo::{Assignment, InequalityQubo, LinearConstraint, QuboMatrix};
//!
//! # fn main() -> Result<(), hycim_qubo::QuboError> {
//! // min xᵀQx subject to 4x₀ + 7x₁ + 2x₂ ≤ 9 (the example of paper Fig. 5(f))
//! let mut q = QuboMatrix::zeros(3);
//! q.set(0, 0, -10.0);
//! q.set(1, 1, -6.0);
//! q.set(2, 2, -8.0);
//! q.set(0, 2, -14.0); // joint profit of items 0 and 2
//! let c = LinearConstraint::new(vec![4, 7, 2], 9)?;
//! let iq = InequalityQubo::new(q, c)?;
//!
//! let x = Assignment::from_bits([true, false, true]);
//! assert!(iq.constraint().is_satisfied(&x));
//! assert_eq!(iq.energy(&x), -32.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod constraint;
pub mod dqubo;
mod error;
mod inequality;
mod ising;
pub mod local_field;
mod matrix;
mod multi;
pub mod packed;
pub mod quant;
pub mod wire;

pub use assignment::Assignment;
pub use constraint::LinearConstraint;
pub use error::QuboError;
pub use inequality::InequalityQubo;
pub use ising::IsingModel;
pub use local_field::{CsrNeighbors, DeltaEngine, LocalFieldState};
pub use matrix::QuboMatrix;
pub use multi::MultiInequalityQubo;
pub use packed::{PackedReplicaState, LANES};
