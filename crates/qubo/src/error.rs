use std::error::Error;
use std::fmt;

/// Errors produced while constructing or manipulating QUBO forms.
///
/// # Example
///
/// ```
/// use hycim_qubo::{LinearConstraint, QuboError};
///
/// let err = LinearConstraint::new(vec![], 5).unwrap_err();
/// assert!(matches!(err, QuboError::EmptyProblem));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuboError {
    /// A problem with zero variables was supplied.
    EmptyProblem,
    /// Two components that must agree on the variable count did not.
    DimensionMismatch {
        /// Dimension expected by the receiving component.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// An index was outside the matrix dimension.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Matrix dimension.
        dim: usize,
    },
    /// The constraint capacity is zero, so no item can ever be selected.
    ZeroCapacity,
    /// A matrix element was not finite (NaN or infinite).
    NonFiniteElement {
        /// Row of the offending element.
        row: usize,
        /// Column of the offending element.
        col: usize,
    },
}

impl fmt::Display for QuboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuboError::EmptyProblem => write!(f, "problem has zero variables"),
            QuboError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            QuboError::IndexOutOfBounds { index, dim } => {
                write!(f, "index {index} out of bounds for dimension {dim}")
            }
            QuboError::ZeroCapacity => write!(f, "constraint capacity is zero"),
            QuboError::NonFiniteElement { row, col } => {
                write!(f, "matrix element ({row}, {col}) is not finite")
            }
        }
    }
}

impl Error for QuboError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            QuboError::EmptyProblem.to_string(),
            QuboError::DimensionMismatch {
                expected: 3,
                found: 4,
            }
            .to_string(),
            QuboError::IndexOutOfBounds { index: 9, dim: 3 }.to_string(),
            QuboError::ZeroCapacity.to_string(),
            QuboError::NonFiniteElement { row: 0, col: 1 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "message ends with period: {m}");
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuboError>();
    }
}
