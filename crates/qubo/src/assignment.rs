use std::fmt;
use std::ops::Index;

use rand::Rng;

/// A binary variable configuration `x ∈ {0,1}ⁿ`.
///
/// This is the "input variable configuration" the paper's SA logic
/// generates each iteration (Sec 3.1) and the inequality filter
/// classifies (Sec 3.3).
///
/// # Example
///
/// ```
/// use hycim_qubo::Assignment;
///
/// let mut x = Assignment::zeros(4);
/// x.set(1, true);
/// x.set(3, true);
/// assert_eq!(x.ones(), 2);
/// assert_eq!(x.to_bit_string(), "0101");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Assignment {
    bits: Vec<bool>,
    /// Cached population count, maintained by every mutator so
    /// [`ones`](Assignment::ones) is O(1) — the SA exchange-move
    /// proposer reads it once per iteration.
    ones: usize,
}

impl Assignment {
    /// Creates an all-zero configuration of `n` variables.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_qubo::Assignment;
    /// let x = Assignment::zeros(3);
    /// assert_eq!(x.ones(), 0);
    /// ```
    pub fn zeros(n: usize) -> Self {
        Self {
            bits: vec![false; n],
            ones: 0,
        }
    }

    /// Creates an all-one configuration of `n` variables.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_qubo::Assignment;
    /// assert_eq!(Assignment::ones_vec(3).ones(), 3);
    /// ```
    pub fn ones_vec(n: usize) -> Self {
        Self {
            bits: vec![true; n],
            ones: n,
        }
    }

    /// Builds a configuration from an iterator of bits.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_qubo::Assignment;
    /// let x = Assignment::from_bits([true, false, true]);
    /// assert_eq!(x.len(), 3);
    /// ```
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let ones = popcount(&bits);
        Self { bits, ones }
    }

    /// Parses a configuration from a string of `'0'`/`'1'` characters.
    ///
    /// Returns `None` if any character is not `'0'` or `'1'`.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_qubo::Assignment;
    /// let x = Assignment::parse_bit_string("0110").unwrap();
    /// assert_eq!(x.ones(), 2);
    /// assert!(Assignment::parse_bit_string("01x0").is_none());
    /// ```
    pub fn parse_bit_string(s: &str) -> Option<Self> {
        s.chars()
            .map(|c| match c {
                '0' => Some(false),
                '1' => Some(true),
                _ => None,
            })
            .collect::<Option<Vec<bool>>>()
            .map(Self::from)
    }

    /// Draws a uniformly random configuration of `n` variables.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_qubo::Assignment;
    /// use rand::{rngs::StdRng, SeedableRng};
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let x = Assignment::random(10, &mut rng);
    /// assert_eq!(x.len(), 10);
    /// ```
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        Self::from_bits((0..n).map(|_| rng.random_bool(0.5)))
    }

    /// Draws a random configuration where each bit is 1 with
    /// probability `density`.
    ///
    /// This is the Monte-Carlo sampler used to generate the 800 filter
    /// validation cases (paper Sec 4.1) and initial SA states (Sec 4.3).
    ///
    /// # Panics
    ///
    /// Panics if `density` is not within `0.0..=1.0`.
    pub fn random_with_density<R: Rng + ?Sized>(n: usize, density: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&density),
            "density must be in [0, 1], got {density}"
        );
        Self::from_bits((0..n).map(|_| rng.random_bool(density)))
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the configuration has zero variables.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Value of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Sets variable `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        if self.bits[i] != value {
            self.ones = if value { self.ones + 1 } else { self.ones - 1 };
            self.bits[i] = value;
        }
    }

    /// Flips variable `i`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_qubo::Assignment;
    /// let mut x = Assignment::zeros(2);
    /// assert!(x.flip(0));
    /// assert!(!x.flip(0));
    /// ```
    pub fn flip(&mut self, i: usize) -> bool {
        self.bits[i] = !self.bits[i];
        self.ones = if self.bits[i] {
            self.ones + 1
        } else {
            self.ones - 1
        };
        self.bits[i]
    }

    /// Number of variables set to 1 (the Hamming weight) — O(1), the
    /// count is maintained incrementally by every mutator.
    pub fn ones(&self) -> usize {
        debug_assert_eq!(self.ones, popcount(&self.bits), "ones cache diverged");
        self.ones
    }

    /// Hamming distance to another configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configurations have different lengths.
    pub fn hamming_distance(&self, other: &Assignment) -> usize {
        assert_eq!(
            self.len(),
            other.len(),
            "hamming distance requires equal lengths"
        );
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Iterates over the bit values.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, bool>> {
        self.bits.iter().copied()
    }

    /// Indices of variables set to 1, in ascending order.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_qubo::Assignment;
    /// let x = Assignment::from_bits([true, false, true]);
    /// assert_eq!(x.support(), vec![0, 2]);
    /// ```
    pub fn support(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }

    /// View of the underlying bit slice.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Renders the configuration as a string of `'0'`/`'1'`.
    pub fn to_bit_string(&self) -> String {
        self.bits
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }

    /// Returns a copy extended with extra zero variables.
    ///
    /// Used when lifting an n-variable configuration into an (n+C)-variable
    /// D-QUBO search space.
    pub fn extended(&self, extra: usize) -> Assignment {
        let mut bits = self.bits.clone();
        bits.extend(std::iter::repeat(false).take(extra));
        Assignment {
            bits,
            ones: self.ones,
        }
    }

    /// Returns the first `n` variables as a new configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn truncated(&self, n: usize) -> Assignment {
        assert!(n <= self.len(), "cannot truncate {} to {n}", self.len());
        let bits = self.bits[..n].to_vec();
        let ones = popcount(&bits);
        Assignment { bits, ones }
    }
}

fn popcount(bits: &[bool]) -> usize {
    bits.iter().filter(|&&b| b).count()
}

impl Index<usize> for Assignment {
    type Output = bool;

    fn index(&self, i: usize) -> &bool {
        &self.bits[i]
    }
}

impl FromIterator<bool> for Assignment {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

impl Extend<bool> for Assignment {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        let before = self.bits.len();
        self.bits.extend(iter);
        self.ones += popcount(&self.bits[before..]);
    }
}

impl From<Vec<bool>> for Assignment {
    fn from(bits: Vec<bool>) -> Self {
        let ones = popcount(&bits);
        Self { bits, ones }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_bit_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_ones() {
        let z = Assignment::zeros(5);
        assert_eq!(z.ones(), 0);
        assert_eq!(z.len(), 5);
        let o = Assignment::ones_vec(5);
        assert_eq!(o.ones(), 5);
        assert_eq!(z.hamming_distance(&o), 5);
    }

    #[test]
    fn flip_roundtrip() {
        let mut x = Assignment::zeros(3);
        assert!(x.flip(1));
        assert!(x.get(1));
        assert!(!x.flip(1));
        assert_eq!(x, Assignment::zeros(3));
    }

    #[test]
    fn bit_string_roundtrip() {
        let x = Assignment::parse_bit_string("10110").unwrap();
        assert_eq!(x.to_bit_string(), "10110");
        assert_eq!(x.support(), vec![0, 2, 3]);
        assert_eq!(format!("{x}"), "10110");
    }

    #[test]
    fn parse_rejects_non_binary() {
        assert!(Assignment::parse_bit_string("012").is_none());
    }

    #[test]
    fn random_is_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(
            Assignment::random(64, &mut a),
            Assignment::random(64, &mut b)
        );
    }

    #[test]
    fn density_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Assignment::random_with_density(20, 0.0, &mut rng).ones(), 0);
        assert_eq!(
            Assignment::random_with_density(20, 1.0, &mut rng).ones(),
            20
        );
    }

    #[test]
    #[should_panic(expected = "density")]
    fn density_out_of_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = Assignment::random_with_density(4, 1.5, &mut rng);
    }

    #[test]
    fn extend_and_truncate() {
        let x = Assignment::from_bits([true, false]);
        let y = x.extended(3);
        assert_eq!(y.len(), 5);
        assert_eq!(y.ones(), 1);
        assert_eq!(y.truncated(2), x);
    }

    #[test]
    fn collect_from_iterator() {
        let x: Assignment = [true, true, false].into_iter().collect();
        assert_eq!(x.ones(), 2);
        let mut y = Assignment::zeros(1);
        y.extend([true, false]);
        assert_eq!(y.len(), 3);
    }
}
