//! Quantization analysis for crossbar mapping (paper Sec 4.2).
//!
//! When a QUBO matrix is mapped onto a CiM crossbar with 1-bit cells,
//! each element needs `⌈log₂ (Q_ij)_MAX⌉` bit planes. D-QUBO's large
//! penalty coefficients inflate this to 16–25 bits while HyCiM stays at
//! 7 bits for the 100-item QKP set (paper Fig. 9(a)), which is where
//! most of the hardware saving of Fig. 9(c) comes from.

use crate::QuboMatrix;

/// Bit width needed to represent magnitudes up to `max_abs` on a
/// crossbar with 1-bit cells: `⌈log₂ max_abs⌉`, minimum 1.
///
/// Matches the paper's convention: `(Q_ij)MAX = 100 → 7` bits,
/// `4·10⁴ → 16`, `2.6·10⁷ → 25`.
///
/// # Example
///
/// ```
/// use hycim_qubo::quant::required_bits;
/// assert_eq!(required_bits(100.0), 7);
/// assert_eq!(required_bits(4.0e4), 16);
/// assert_eq!(required_bits(2.6e7), 25);
/// ```
pub fn required_bits(max_abs: f64) -> u32 {
    if max_abs <= 1.0 {
        return 1;
    }
    max_abs.log2().ceil() as u32
}

/// Bit width needed to map `q` onto the crossbar.
///
/// # Example
///
/// ```
/// use hycim_qubo::quant::matrix_bits;
/// use hycim_qubo::QuboMatrix;
/// let mut q = QuboMatrix::zeros(2);
/// q.set(0, 1, -100.0);
/// assert_eq!(matrix_bits(&q), 7);
/// ```
pub fn matrix_bits(q: &QuboMatrix) -> u32 {
    required_bits(q.max_abs_element())
}

/// Result of quantizing a matrix to signed integers of `bits` bits.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    /// Quantized coefficients as `(i, j, level)` triplets, `i <= j`.
    levels: Vec<(usize, usize, i64)>,
    /// Matrix dimension.
    dim: usize,
    /// Bit width of the magnitude.
    bits: u32,
    /// Multiply a level by this factor to recover the approximate value.
    scale: f64,
}

impl QuantizedMatrix {
    /// Quantizes `q` uniformly to integer levels representable in
    /// `bits` magnitude bits (levels in `[-(2^bits − 1), 2^bits − 1]`).
    ///
    /// The scale maps the largest absolute element to the top level, so
    /// lower `bits` coarsens all coefficients — exactly the effect
    /// limited crossbar precision has on D-QUBO's huge penalty terms.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 62`.
    pub fn quantize(q: &QuboMatrix, bits: u32) -> Self {
        assert!(bits > 0 && bits <= 62, "bits must be in 1..=62, got {bits}");
        let max_abs = q.max_abs_element();
        let top = ((1u64 << bits) - 1) as f64;
        // When the magnitudes already fit the integer grid (the HyCiM
        // case: (Q)MAX = 100 at 7 bits), store them directly at unit
        // scale — integer matrices then map losslessly. Only when the
        // range exceeds the grid (the D-QUBO case) must the scale grow,
        // which is what crushes small coefficients.
        let scale = if max_abs <= top { 1.0 } else { max_abs / top };
        let levels = q
            .iter_nonzero()
            .map(|(i, j, v)| (i, j, (v / scale).round() as i64))
            .filter(|&(_, _, l)| l != 0)
            .collect();
        Self {
            levels,
            dim: q.dim(),
            bits,
            scale,
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Magnitude bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Scale factor from levels back to approximate coefficients.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Quantized integer levels as `(i, j, level)` triplets with `i <= j`.
    pub fn levels(&self) -> &[(usize, usize, i64)] {
        &self.levels
    }

    /// Reconstructs the approximate real-valued matrix.
    pub fn dequantize(&self) -> QuboMatrix {
        let mut q = QuboMatrix::zeros(self.dim);
        for &(i, j, l) in &self.levels {
            q.set(i, j, l as f64 * self.scale);
        }
        q
    }

    /// Worst-case absolute quantization error per coefficient
    /// (half a level).
    pub fn max_error(&self) -> f64 {
        self.scale / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn paper_bit_widths() {
        // Fig. 9(a): HyCiM (Q)MAX = 100 → 7 bits; D-QUBO 4·10⁴..2.6·10⁷
        // → 16..25 bits (the paper's "16-25-bit quantization").
        assert_eq!(required_bits(100.0), 7);
        assert_eq!(required_bits(4.0e4), 16);
        assert_eq!(required_bits(2.6e7), 25);
        assert_eq!(required_bits(0.5), 1);
        assert_eq!(required_bits(1.0), 1);
        assert_eq!(required_bits(2.0), 1);
        assert_eq!(required_bits(3.0), 2);
    }

    #[test]
    fn quantize_roundtrip_error_bound() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut q = QuboMatrix::zeros(10);
        for i in 0..10 {
            for j in i..10 {
                q.set(i, j, rng.random_range(-100.0..100.0));
            }
        }
        for bits in [4, 7, 10] {
            let quant = QuantizedMatrix::quantize(&q, bits);
            let back = quant.dequantize();
            for (i, j, v) in q.iter_nonzero() {
                let err = (back.get(i, j) - v).abs();
                assert!(
                    err <= quant.max_error() + 1e-12,
                    "error {err} above bound {} at ({i},{j}) bits={bits}",
                    quant.max_error()
                );
            }
        }
    }

    #[test]
    fn higher_bits_reduce_energy_error() {
        let mut rng = StdRng::seed_from_u64(78);
        let mut q = QuboMatrix::zeros(12);
        for i in 0..12 {
            for j in i..12 {
                q.set(i, j, rng.random_range(-50.0..50.0));
            }
        }
        let x = Assignment::random(12, &mut rng);
        let exact = q.energy(&x);
        let err4 = (QuantizedMatrix::quantize(&q, 4).dequantize().energy(&x) - exact).abs();
        let err10 = (QuantizedMatrix::quantize(&q, 10).dequantize().energy(&x) - exact).abs();
        assert!(err10 <= err4, "10-bit error {err10} > 4-bit error {err4}");
    }

    #[test]
    fn zero_matrix_quantizes_cleanly() {
        let q = QuboMatrix::zeros(4);
        let quant = QuantizedMatrix::quantize(&q, 7);
        assert!(quant.levels().is_empty());
        assert_eq!(quant.dequantize(), q);
    }

    #[test]
    fn levels_fit_in_bits() {
        let mut q = QuboMatrix::zeros(3);
        q.set(0, 0, 1000.0);
        q.set(0, 1, -333.0);
        let quant = QuantizedMatrix::quantize(&q, 5);
        let top = (1i64 << 5) - 1;
        for &(_, _, l) in quant.levels() {
            assert!(l.abs() <= top, "level {l} exceeds {top}");
        }
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn zero_bits_panics() {
        let _ = QuantizedMatrix::quantize(&QuboMatrix::zeros(1), 0);
    }
}
