//! The conventional **D-QUBO** transformation (paper Fig. 1(b),
//! Sec 2.1): embedding an inequality constraint `Σ wᵢxᵢ ≤ C` into the
//! objective as a quadratic penalty over auxiliary variables.
//!
//! The paper's baseline uses a *one-hot* auxiliary vector
//! `y ∈ {0,1}^C` and the penalty
//!
//! ```text
//! p₁(x, y) = α(1 − Σₖ yₖ)² + β(Σᵢ wᵢxᵢ − Σₖ k·yₖ)²
//! ```
//!
//! which expands the search space from `2ⁿ` to `2^(n+C)` and blows up
//! the largest matrix element to `O(βC²)` (Fig. 9(a)). A more compact
//! *binary* slack encoding (⌈log₂(C+1)⌉ auxiliaries) is provided as an
//! extension for ablation studies.

use std::fmt;

use crate::{Assignment, LinearConstraint, QuboError, QuboMatrix};

/// Auxiliary-variable encoding used by the D-QUBO transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum AuxEncoding {
    /// One-hot `y ∈ {0,1}^C` with value `Σ k·yₖ` (the paper's baseline,
    /// Fig. 1(b)). Adds `C` variables.
    #[default]
    OneHot,
    /// Binary slack `s = Σ 2ʲ·bⱼ` with `⌈log₂(C+1)⌉` bits and penalty
    /// `β(Σwᵢxᵢ + s − C)²`. Adds `⌈log₂(C+1)⌉` variables.
    Binary,
}

impl fmt::Display for AuxEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuxEncoding::OneHot => f.write_str("one-hot"),
            AuxEncoding::Binary => f.write_str("binary"),
        }
    }
}

/// Penalty coefficients `α`, `β` of the D-QUBO transformation.
///
/// The paper's evaluation sets both to 2 (Sec 4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltyWeights {
    /// Coefficient of the one-hot cardinality penalty `α(1 − Σyₖ)²`.
    pub alpha: f64,
    /// Coefficient of the load-matching penalty `β(Σwᵢxᵢ − Σk·yₖ)²`.
    pub beta: f64,
}

impl PenaltyWeights {
    /// The paper's setting `α = β = 2` (Sec 4.2).
    pub const PAPER: PenaltyWeights = PenaltyWeights {
        alpha: 2.0,
        beta: 2.0,
    };

    /// Creates penalty weights.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is non-positive or non-finite.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "alpha must be positive and finite"
        );
        assert!(
            beta > 0.0 && beta.is_finite(),
            "beta must be positive and finite"
        );
        Self { alpha, beta }
    }
}

impl Default for PenaltyWeights {
    fn default() -> Self {
        Self::PAPER
    }
}

/// A constrained problem transformed to an unconstrained QUBO over
/// `n + n_aux` variables (the baseline HyCiM is compared against).
///
/// # Example
///
/// ```
/// use hycim_qubo::dqubo::{AuxEncoding, DquboForm, PenaltyWeights};
/// use hycim_qubo::{LinearConstraint, QuboMatrix};
///
/// # fn main() -> Result<(), hycim_qubo::QuboError> {
/// let mut q = QuboMatrix::zeros(3);
/// q.set(0, 0, -10.0);
/// let c = LinearConstraint::new(vec![4, 7, 2], 9)?;
/// let d = DquboForm::transform(&q, &c, PenaltyWeights::PAPER, AuxEncoding::OneHot)?;
/// assert_eq!(d.num_items(), 3);
/// assert_eq!(d.num_aux(), 9);      // one y_k per capacity unit
/// assert_eq!(d.dim(), 12);         // search space 2¹² instead of 2³
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DquboForm {
    matrix: QuboMatrix,
    n_items: usize,
    n_aux: usize,
    encoding: AuxEncoding,
    weights: PenaltyWeights,
    constraint: LinearConstraint,
    /// Constant energy offset dropped from the penalty expansion.
    offset: f64,
}

impl DquboForm {
    /// Transforms `min xᵀQx  s.t.  Σwᵢxᵢ ≤ C` into an unconstrained
    /// QUBO with penalty terms (paper Fig. 1(b)).
    ///
    /// # Errors
    ///
    /// Returns [`QuboError::DimensionMismatch`] if `objective` and
    /// `constraint` disagree on the variable count.
    pub fn transform(
        objective: &QuboMatrix,
        constraint: &LinearConstraint,
        weights: PenaltyWeights,
        encoding: AuxEncoding,
    ) -> Result<Self, QuboError> {
        let n = objective.dim();
        if n != constraint.dim() {
            return Err(QuboError::DimensionMismatch {
                expected: n,
                found: constraint.dim(),
            });
        }
        match encoding {
            AuxEncoding::OneHot => Self::transform_one_hot(objective, constraint, weights),
            AuxEncoding::Binary => Self::transform_binary(objective, constraint, weights),
        }
    }

    /// One-hot encoding per the paper:
    /// `p₁ = α(1 − Σyₖ)² + β(Σwᵢxᵢ − Σk·yₖ)²`, `k = 1..=C`.
    // Indices couple `w` to the (i, j) matrix entries being written;
    // the indexed form mirrors the β(A − B)² expansion as written.
    #[allow(clippy::needless_range_loop)]
    fn transform_one_hot(
        objective: &QuboMatrix,
        constraint: &LinearConstraint,
        pw: PenaltyWeights,
    ) -> Result<Self, QuboError> {
        let n = objective.dim();
        let c = constraint.capacity() as usize;
        let dim = n + c;
        let w = constraint.weights();
        let (alpha, beta) = (pw.alpha, pw.beta);

        let mut q = objective.embedded(dim);

        // α(1 − Σy)² = α − 2αΣyₖ + αΣyₖ + 2αΣ_{k<l} yₖyₗ
        //            = α − αΣyₖ + 2αΣ_{k<l} yₖyₗ      (yₖ² = yₖ)
        for k in 0..c {
            q.add(n + k, n + k, -alpha);
            for l in (k + 1)..c {
                q.add(n + k, n + l, 2.0 * alpha);
            }
        }

        // β(A − B)² with A = Σwᵢxᵢ, B = Σ k·yₖ (value of aux slot k is k+1).
        for i in 0..n {
            let wi = w[i] as f64;
            // A² diagonal: β wᵢ² xᵢ.
            q.add(i, i, beta * wi * wi);
            // A² off-diagonal: 2β wᵢwⱼ xᵢxⱼ.
            for j in (i + 1)..n {
                let wj = w[j] as f64;
                if wi != 0.0 && wj != 0.0 {
                    q.add(i, j, 2.0 * beta * wi * wj);
                }
            }
            // −2AB cross terms: −2β wᵢ k xᵢ yₖ.
            for k in 0..c {
                let kv = (k + 1) as f64;
                q.add(i, n + k, -2.0 * beta * wi * kv);
            }
        }
        for k in 0..c {
            let kv = (k + 1) as f64;
            // B² diagonal: β k² yₖ.
            q.add(n + k, n + k, beta * kv * kv);
            // B² off-diagonal: 2β k·l yₖyₗ.
            for l in (k + 1)..c {
                let lv = (l + 1) as f64;
                q.add(n + k, n + l, 2.0 * beta * kv * lv);
            }
        }

        Ok(Self {
            matrix: q,
            n_items: n,
            n_aux: c,
            encoding: AuxEncoding::OneHot,
            weights: pw,
            constraint: constraint.clone(),
            offset: alpha,
        })
    }

    /// Binary slack encoding (extension):
    /// `p = β(Σwᵢxᵢ + Σ 2ʲbⱼ − C)²` with `⌈log₂(C+1)⌉` slack bits.
    fn transform_binary(
        objective: &QuboMatrix,
        constraint: &LinearConstraint,
        pw: PenaltyWeights,
    ) -> Result<Self, QuboError> {
        let n = objective.dim();
        let cap = constraint.capacity();
        let bits = (u64::BITS - cap.leading_zeros()) as usize; // ⌈log₂(C+1)⌉
        let dim = n + bits;
        let w = constraint.weights();
        let beta = pw.beta;

        let mut q = objective.embedded(dim);

        // Terms of β(A + S − C)² where A = Σwᵢxᵢ, S = Σ2ʲbⱼ:
        //   β(A² + S² + C² + 2AS − 2AC − 2SC)
        // Coefficient helper: value of variable v in the linear form.
        let coeff = |v: usize| -> f64 {
            if v < n {
                w[v] as f64
            } else {
                (1u64 << (v - n)) as f64
            }
        };
        let c = cap as f64;
        for a in 0..dim {
            let ca = coeff(a);
            if ca == 0.0 {
                continue;
            }
            // Squared + linear-in-C part: β(ca² − 2·ca·C)·v  (v² = v).
            q.add(a, a, beta * (ca * ca - 2.0 * ca * c));
            for b in (a + 1)..dim {
                let cb = coeff(b);
                if cb != 0.0 {
                    q.add(a, b, 2.0 * beta * ca * cb);
                }
            }
        }

        Ok(Self {
            matrix: q,
            n_items: n,
            n_aux: bits,
            encoding: AuxEncoding::Binary,
            weights: pw,
            constraint: constraint.clone(),
            offset: beta * c * c,
        })
    }

    /// The expanded QUBO matrix over `n + n_aux` variables.
    pub fn matrix(&self) -> &QuboMatrix {
        &self.matrix
    }

    /// Number of original item variables `n`.
    pub fn num_items(&self) -> usize {
        self.n_items
    }

    /// Number of auxiliary variables added by the encoding.
    pub fn num_aux(&self) -> usize {
        self.n_aux
    }

    /// Total QUBO dimension `n + n_aux` (paper Fig. 9(b)).
    pub fn dim(&self) -> usize {
        self.n_items + self.n_aux
    }

    /// Encoding in use.
    pub fn encoding(&self) -> AuxEncoding {
        self.encoding
    }

    /// Penalty weights in use.
    pub fn penalty_weights(&self) -> PenaltyWeights {
        self.weights
    }

    /// The original constraint the penalty encodes.
    pub fn constraint(&self) -> &LinearConstraint {
        &self.constraint
    }

    /// Constant offset dropped during the penalty expansion: the full
    /// D-QUBO energy is `matrix.energy(z) + offset`.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Full D-QUBO energy including the constant offset.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.dim()`.
    pub fn energy(&self, z: &Assignment) -> f64 {
        self.matrix.energy(z) + self.offset
    }

    /// Penalty value `p₁(x, y)` alone (energy minus the original
    /// objective on the item part). Zero iff the auxiliaries certify a
    /// satisfied constraint.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.dim()`.
    pub fn penalty(&self, z: &Assignment, original: &QuboMatrix) -> f64 {
        let x = z.truncated(self.n_items);
        self.energy(z) - original.energy(&x)
    }

    /// Extracts the item part `x` of an extended configuration.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.dim()`.
    pub fn decode(&self, z: &Assignment) -> Assignment {
        assert_eq!(z.len(), self.dim(), "configuration length mismatch");
        z.truncated(self.n_items)
    }

    /// Lifts an item configuration to the extended space, choosing the
    /// penalty-minimizing auxiliary assignment for the current load.
    ///
    /// For one-hot: sets `y_load = 1` when `1 ≤ load ≤ C` (zero load
    /// keeps all `yₖ = 0`, incurring the inherent `α` penalty of the
    /// paper's encoding). For binary: sets the slack bits to
    /// `min(C − load, C)` when feasible, else all zero.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_items()`.
    pub fn lift(&self, x: &Assignment) -> Assignment {
        assert_eq!(x.len(), self.n_items, "item configuration length mismatch");
        let load = self.constraint.load(x);
        let mut z = x.extended(self.n_aux);
        match self.encoding {
            AuxEncoding::OneHot => {
                if load >= 1 && load <= self.constraint.capacity() {
                    z.set(self.n_items + (load as usize - 1), true);
                }
            }
            AuxEncoding::Binary => {
                if load <= self.constraint.capacity() {
                    let slack = self.constraint.capacity() - load;
                    for j in 0..self.n_aux {
                        if slack >> j & 1 == 1 {
                            z.set(self.n_items + j, true);
                        }
                    }
                }
            }
        }
        z
    }
}

impl fmt::Display for DquboForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DquboForm({} encoding, n={}+{}, (Q)MAX={:.3e})",
            self.encoding,
            self.n_items,
            self.n_aux,
            self.matrix.max_abs_element()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problem() -> (QuboMatrix, LinearConstraint) {
        let mut q = QuboMatrix::zeros(3);
        q.set(0, 0, -10.0);
        q.set(1, 1, -6.0);
        q.set(2, 2, -8.0);
        q.set(0, 2, -14.0);
        let c = LinearConstraint::new(vec![4, 7, 2], 9).unwrap();
        (q, c)
    }

    /// Brute-force reference implementation of the paper's penalty
    /// p₁(x,y) = α(1−Σy)² + β(Σwx − Σky)².
    fn reference_one_hot_energy(
        q: &QuboMatrix,
        c: &LinearConstraint,
        pw: PenaltyWeights,
        z: &Assignment,
    ) -> f64 {
        let n = q.dim();
        let x = z.truncated(n);
        let sum_y: f64 = (n..z.len()).map(|k| if z.get(k) { 1.0 } else { 0.0 }).sum();
        let sum_ky: f64 = (n..z.len())
            .map(|k| if z.get(k) { (k - n + 1) as f64 } else { 0.0 })
            .sum();
        let load = c.load(&x) as f64;
        q.energy(&x) + pw.alpha * (1.0 - sum_y).powi(2) + pw.beta * (load - sum_ky).powi(2)
    }

    #[test]
    fn one_hot_matches_reference_formula() {
        let (q, c) = small_problem();
        let d = DquboForm::transform(&q, &c, PenaltyWeights::PAPER, AuxEncoding::OneHot).unwrap();
        assert_eq!(d.dim(), 12);
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let z = Assignment::random(12, &mut rng);
            let expected = reference_one_hot_energy(&q, &c, PenaltyWeights::PAPER, &z);
            assert!(
                (d.energy(&z) - expected).abs() < 1e-9,
                "energy mismatch for {z}: got {}, want {expected}",
                d.energy(&z)
            );
        }
    }

    #[test]
    fn feasible_lift_has_zero_penalty() {
        let (q, c) = small_problem();
        let d = DquboForm::transform(&q, &c, PenaltyWeights::PAPER, AuxEncoding::OneHot).unwrap();
        // x = {items 0, 2}: load 6, feasible, nonzero.
        let x = Assignment::from_bits([true, false, true]);
        let z = d.lift(&x);
        assert!((d.penalty(&z, &q)).abs() < 1e-9);
        assert_eq!(d.decode(&z), x);
    }

    #[test]
    fn infeasible_configuration_is_penalized() {
        let (q, c) = small_problem();
        let d = DquboForm::transform(&q, &c, PenaltyWeights::PAPER, AuxEncoding::OneHot).unwrap();
        // x = all items: load 13 > 9. No aux assignment reaches zero
        // penalty. Note the structural weakness of the paper's one-hot
        // encoding with small α: a *multi-hot* y (e.g. y₄ + y₉ = 13)
        // matches the load and pays only α(1−2)² = α — far cheaper than
        // the honest one-hot penalty β(13−9)². This is precisely why
        // D-QUBO SA gets trapped in infeasible configurations (Fig. 10).
        let x = Assignment::ones_vec(3);
        let mut best = f64::INFINITY;
        for ybits in 0u32..(1 << 9) {
            let mut z = x.extended(9);
            for k in 0..9 {
                if ybits >> k & 1 == 1 {
                    z.set(3 + k, true);
                }
            }
            best = best.min(d.penalty(&z, &q));
        }
        assert!(best > 0.0, "infeasible x reached zero penalty");
        assert!(
            (best - PenaltyWeights::PAPER.alpha).abs() < 1e-9,
            "cheapest cheat should cost exactly α, got {best}"
        );
    }

    #[test]
    fn binary_encoding_matches_reference() {
        let (q, c) = small_problem();
        let d = DquboForm::transform(&q, &c, PenaltyWeights::PAPER, AuxEncoding::Binary).unwrap();
        // ⌈log₂(9+1)⌉ = 4 slack bits.
        assert_eq!(d.num_aux(), 4);
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let z = Assignment::random(7, &mut rng);
            let x = z.truncated(3);
            let slack: u64 = (0..4).map(|j| if z.get(3 + j) { 1 << j } else { 0 }).sum();
            let expected = q.energy(&x) + 2.0 * ((c.load(&x) as f64) + slack as f64 - 9.0).powi(2);
            assert!((d.energy(&z) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn binary_lift_is_penalty_free_when_feasible() {
        let (q, c) = small_problem();
        let d = DquboForm::transform(&q, &c, PenaltyWeights::PAPER, AuxEncoding::Binary).unwrap();
        for bits in 0u32..8 {
            let x = Assignment::from_bits((0..3).map(|i| bits >> i & 1 == 1));
            let z = d.lift(&x);
            if c.is_satisfied(&x) {
                assert!((d.penalty(&z, &q)).abs() < 1e-9, "penalty for feasible {x}");
            } else {
                assert!(d.penalty(&z, &q) > 0.0, "no penalty for infeasible {x}");
            }
        }
    }

    #[test]
    fn one_hot_qij_max_scales_with_capacity_squared() {
        // The claim behind paper Fig. 9(a): (Q_ij)MAX ≈ 2βC(C−1) for
        // the y-pair terms, 4–7 orders of magnitude above the original.
        let (q, _) = small_problem();
        let c = LinearConstraint::new(vec![4, 7, 2], 100).unwrap();
        let d = DquboForm::transform(&q, &c, PenaltyWeights::PAPER, AuxEncoding::OneHot).unwrap();
        let expected = 2.0 * 2.0 * 100.0 * 99.0 + 2.0 * 2.0; // 2βkl + 2α at k=99,l=100
        assert_eq!(d.matrix().max_abs_element(), expected);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let q = QuboMatrix::zeros(2);
        let c = LinearConstraint::new(vec![1, 2, 3], 4).unwrap();
        assert!(DquboForm::transform(&q, &c, PenaltyWeights::PAPER, AuxEncoding::OneHot).is_err());
    }

    #[test]
    fn display_mentions_encoding() {
        let (q, c) = small_problem();
        let d = DquboForm::transform(&q, &c, PenaltyWeights::PAPER, AuxEncoding::OneHot).unwrap();
        assert!(d.to_string().contains("one-hot"));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn penalty_weights_validate() {
        let _ = PenaltyWeights::new(0.0, 1.0);
    }
}
