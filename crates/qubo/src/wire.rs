//! Exact wire encoding for floating-point values.
//!
//! The distributed layer (`hycim-net`) must merge sharded results
//! bit-identically to a local run, so any `f64` that crosses the wire
//! — TSP distance tables, spin-glass couplings, objectives, reported
//! energies — is carried as the hexadecimal form of its IEEE-754 bit
//! pattern rather than a decimal rendering. Decimal round-trips are
//! lossy in general ("%.17g" is exact but locale- and formatter-
//! fragile); `to_bits`/`from_bits` is exact by construction, including
//! for negative zero, infinities, and NaN payloads.

/// Encodes an `f64` as the 16-digit lowercase hex of its bit pattern.
///
/// ```
/// assert_eq!(hycim_qubo::wire::encode_f64(1.0), "3ff0000000000000");
/// assert_eq!(hycim_qubo::wire::encode_f64(-0.0), "8000000000000000");
/// ```
pub fn encode_f64(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

/// Decodes a hex bit-pattern produced by [`encode_f64`]. Returns
/// `None` unless the input is exactly 16 lowercase hex digits, so a
/// truncated or doctored frame fails loudly instead of decoding to a
/// nearby value.
pub fn decode_f64(text: &str) -> Option<f64> {
    if text.len() != 16
        || !text
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(text, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.1,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0 / 3.0,
            -123456.789e-12,
        ] {
            let enc = encode_f64(v);
            let dec = decode_f64(&enc).unwrap();
            assert_eq!(dec.to_bits(), v.to_bits(), "{v} via {enc}");
        }
        // NaN payload survives too (bit equality, not ==).
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        assert_eq!(
            decode_f64(&encode_f64(nan)).unwrap().to_bits(),
            nan.to_bits()
        );
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(decode_f64(""), None);
        assert_eq!(decode_f64("3ff"), None); // too short
        assert_eq!(decode_f64("3ff00000000000000"), None); // too long
        assert_eq!(decode_f64("3FF0000000000000"), None); // uppercase
        assert_eq!(decode_f64("3ff000000000000g"), None); // non-hex
        assert_eq!(decode_f64(" 3ff000000000000"), None); // whitespace
    }
}
