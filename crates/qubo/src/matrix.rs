use std::fmt;

use crate::{Assignment, QuboError};

/// An `n × n` QUBO matrix with energy `E(x) = xᵀQx` (paper Eq. 2).
///
/// The matrix is stored in upper-triangular form: setting an
/// off-diagonal pair `(i, j)` and `(j, i)` separately accumulates into
/// the single canonical coefficient for the product `xᵢxⱼ` (binary
/// variables satisfy `xᵢ² = xᵢ`, so the diagonal carries the linear
/// terms).
///
/// # Example
///
/// ```
/// use hycim_qubo::{Assignment, QuboMatrix};
///
/// let mut q = QuboMatrix::zeros(2);
/// q.set(0, 0, -3.0);
/// q.set(0, 1, 2.0);
/// let x = Assignment::from_bits([true, true]);
/// assert_eq!(q.energy(&x), -1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuboMatrix {
    n: usize,
    /// Upper-triangular coefficients, row-major: entry for (i, j), i <= j,
    /// lives at `tri_index(i, j)`.
    coeffs: Vec<f64>,
}

impl QuboMatrix {
    /// Creates an all-zero QUBO matrix of dimension `n`.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_qubo::QuboMatrix;
    /// let q = QuboMatrix::zeros(4);
    /// assert_eq!(q.dim(), 4);
    /// ```
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            coeffs: vec![0.0; n * (n + 1) / 2],
        }
    }

    /// Builds a QUBO matrix from `(i, j, value)` triplets.
    ///
    /// Triplets with `i > j` are folded into the upper triangle;
    /// repeated coordinates accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`QuboError::IndexOutOfBounds`] if a coordinate exceeds
    /// `n`, or [`QuboError::NonFiniteElement`] if a value is NaN or
    /// infinite.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_qubo::QuboMatrix;
    /// # fn main() -> Result<(), hycim_qubo::QuboError> {
    /// let q = QuboMatrix::from_triplets(3, [(0, 1, 2.0), (1, 0, 1.0)])?;
    /// assert_eq!(q.get(0, 1), 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_triplets<I>(n: usize, triplets: I) -> Result<Self, QuboError>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut q = Self::zeros(n);
        for (i, j, v) in triplets {
            if i >= n {
                return Err(QuboError::IndexOutOfBounds { index: i, dim: n });
            }
            if j >= n {
                return Err(QuboError::IndexOutOfBounds { index: j, dim: n });
            }
            if !v.is_finite() {
                return Err(QuboError::NonFiniteElement { row: i, col: j });
            }
            q.add(i, j, v);
        }
        Ok(q)
    }

    /// Matrix dimension `n` (number of binary variables).
    pub fn dim(&self) -> usize {
        self.n
    }

    fn tri_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i <= j && j < self.n);
        // Row i starts after rows 0..i, each row k holding n-k entries.
        i * self.n - i * (i + 1) / 2 + j
    }

    /// Canonical coefficient of the product `xᵢxⱼ` (order-insensitive).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        assert!(
            b < self.n,
            "index ({i}, {j}) out of bounds for dim {}",
            self.n
        );
        self.coeffs[self.tri_index(a, b)]
    }

    /// Sets the canonical coefficient of `xᵢxⱼ`, replacing any prior value.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        assert!(
            b < self.n,
            "index ({i}, {j}) out of bounds for dim {}",
            self.n
        );
        let idx = self.tri_index(a, b);
        self.coeffs[idx] = value;
    }

    /// Adds `value` to the canonical coefficient of `xᵢxⱼ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn add(&mut self, i: usize, j: usize, value: f64) {
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        assert!(
            b < self.n,
            "index ({i}, {j}) out of bounds for dim {}",
            self.n
        );
        let idx = self.tri_index(a, b);
        self.coeffs[idx] += value;
    }

    /// Evaluates the QUBO energy `xᵀQx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_qubo::{Assignment, QuboMatrix};
    /// let mut q = QuboMatrix::zeros(2);
    /// q.set(0, 1, 5.0);
    /// assert_eq!(q.energy(&Assignment::ones_vec(2)), 5.0);
    /// ```
    pub fn energy(&self, x: &Assignment) -> f64 {
        assert_eq!(
            x.len(),
            self.n,
            "assignment length {} does not match dim {}",
            x.len(),
            self.n
        );
        let mut e = 0.0;
        for i in 0..self.n {
            if !x.get(i) {
                continue;
            }
            // Diagonal (linear) term.
            e += self.coeffs[self.tri_index(i, i)];
            for j in (i + 1)..self.n {
                if x.get(j) {
                    e += self.coeffs[self.tri_index(i, j)];
                }
            }
        }
        e
    }

    /// Energy change `E(x with bit i flipped) − E(x)` in O(n).
    ///
    /// This is the quantity the SA logic needs per move; recomputing the
    /// full energy would be O(n²).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()` or `i` is out of bounds.
    ///
    /// # Example
    ///
    /// ```
    /// use hycim_qubo::{Assignment, QuboMatrix};
    /// let mut q = QuboMatrix::zeros(2);
    /// q.set(0, 0, -4.0);
    /// let x = Assignment::zeros(2);
    /// assert_eq!(q.flip_delta(&x, 0), -4.0);
    /// ```
    pub fn flip_delta(&self, x: &Assignment, i: usize) -> f64 {
        assert_eq!(
            x.len(),
            self.n,
            "assignment length {} does not match dim {}",
            x.len(),
            self.n
        );
        assert!(i < self.n, "index {i} out of bounds for dim {}", self.n);
        // Interaction of bit i with the rest of the configuration plus
        // its own diagonal term.
        let mut coupling = self.coeffs[self.tri_index(i, i)];
        for j in 0..self.n {
            if j != i && x.get(j) {
                coupling += self.get(i, j);
            }
        }
        if x.get(i) {
            -coupling
        } else {
            coupling
        }
    }

    /// The largest absolute matrix element `(Q_ij)_MAX` (paper Sec 4.2).
    ///
    /// Determines the crossbar quantization precision; see
    /// [`crate::quant::required_bits`].
    pub fn max_abs_element(&self) -> f64 {
        self.coeffs.iter().fold(0.0_f64, |m, &c| m.max(c.abs()))
    }

    /// Number of structurally nonzero coefficients.
    pub fn nonzeros(&self) -> usize {
        self.coeffs.iter().filter(|&&c| c != 0.0).count()
    }

    /// Iterates over nonzero `(i, j, value)` triplets with `i <= j`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            (i..self.n).filter_map(move |j| {
                let v = self.coeffs[self.tri_index(i, j)];
                (v != 0.0).then_some((i, j, v))
            })
        })
    }

    /// Scales every coefficient by `factor`, returning the result.
    pub fn scaled(&self, factor: f64) -> QuboMatrix {
        QuboMatrix {
            n: self.n,
            coeffs: self.coeffs.iter().map(|c| c * factor).collect(),
        }
    }

    /// Adds another QUBO matrix of the same dimension element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`QuboError::DimensionMismatch`] if dimensions differ.
    pub fn try_add(&self, other: &QuboMatrix) -> Result<QuboMatrix, QuboError> {
        if self.n != other.n {
            return Err(QuboError::DimensionMismatch {
                expected: self.n,
                found: other.n,
            });
        }
        Ok(QuboMatrix {
            n: self.n,
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Embeds this matrix in the top-left corner of a larger zero
    /// matrix of dimension `new_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `new_dim < self.dim()`.
    pub fn embedded(&self, new_dim: usize) -> QuboMatrix {
        assert!(
            new_dim >= self.n,
            "cannot embed dim {} into smaller dim {new_dim}",
            self.n
        );
        let mut q = QuboMatrix::zeros(new_dim);
        for (i, j, v) in self.iter_nonzero() {
            q.set(i, j, v);
        }
        q
    }

    /// Dense row-major copy of the full symmetric matrix, splitting
    /// each off-diagonal coefficient evenly across `(i,j)` and `(j,i)`.
    ///
    /// Useful for mapping onto crossbars that store the full square
    /// array (paper Fig. 6(a) keeps the upper triangle; this helper
    /// supports both conventions).
    pub fn to_dense_symmetric(&self) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; self.n]; self.n];
        for (i, j, v) in self.iter_nonzero() {
            if i == j {
                m[i][i] = v;
            } else {
                m[i][j] = v / 2.0;
                m[j][i] = v / 2.0;
            }
        }
        m
    }

    /// Dense row-major copy of the upper-triangular convention used by
    /// the paper's crossbar mapping (Fig. 6(a)): element `(i, j)` holds
    /// the full coefficient for `i <= j`, zeros below the diagonal.
    pub fn to_dense_upper(&self) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; self.n]; self.n];
        for (i, j, v) in self.iter_nonzero() {
            m[i][j] = v;
        }
        m
    }
}

impl fmt::Display for QuboMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "QuboMatrix(dim={}, nnz={})", self.n, self.nonzeros())?;
        if self.n <= 8 {
            for row in self.to_dense_upper() {
                let cells: Vec<String> = row.iter().map(|v| format!("{v:8.2}")).collect();
                writeln!(f, "  [{}]", cells.join(" "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_qubo(n: usize, seed: u64) -> QuboMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = QuboMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                q.set(i, j, rng.random_range(-10.0..10.0));
            }
        }
        q
    }

    #[test]
    fn empty_matrix_energy_is_zero() {
        let q = QuboMatrix::zeros(0);
        assert_eq!(q.energy(&Assignment::zeros(0)), 0.0);
    }

    #[test]
    fn symmetric_fold() {
        let mut q = QuboMatrix::zeros(3);
        q.add(0, 2, 1.5);
        q.add(2, 0, 2.5);
        assert_eq!(q.get(0, 2), 4.0);
        assert_eq!(q.get(2, 0), 4.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // deliberate brute-force double loop
    fn energy_matches_brute_force_definition() {
        let q = random_qubo(6, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let x = Assignment::random(6, &mut rng);
            // Brute-force xᵀQx with the symmetric dense convention.
            let dense = q.to_dense_symmetric();
            let mut e = 0.0;
            for i in 0..6 {
                for j in 0..6 {
                    if x.get(i) && x.get(j) {
                        e += dense[i][j];
                    }
                }
            }
            assert!((q.energy(&x) - e).abs() < 1e-9);
        }
    }

    #[test]
    fn flip_delta_matches_full_recompute() {
        let q = random_qubo(8, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let mut x = Assignment::random(8, &mut rng);
            let i = rng.random_range(0..8);
            let before = q.energy(&x);
            let delta = q.flip_delta(&x, i);
            x.flip(i);
            let after = q.energy(&x);
            assert!(
                (after - before - delta).abs() < 1e-9,
                "delta mismatch at bit {i}"
            );
        }
    }

    #[test]
    fn from_triplets_validates() {
        assert!(matches!(
            QuboMatrix::from_triplets(2, [(0, 5, 1.0)]),
            Err(QuboError::IndexOutOfBounds { index: 5, dim: 2 })
        ));
        assert!(matches!(
            QuboMatrix::from_triplets(2, [(0, 1, f64::NAN)]),
            Err(QuboError::NonFiniteElement { row: 0, col: 1 })
        ));
    }

    #[test]
    fn max_abs_element_and_nnz() {
        let mut q = QuboMatrix::zeros(3);
        q.set(0, 1, -7.0);
        q.set(2, 2, 3.0);
        assert_eq!(q.max_abs_element(), 7.0);
        assert_eq!(q.nonzeros(), 2);
        let triplets: Vec<_> = q.iter_nonzero().collect();
        assert_eq!(triplets, vec![(0, 1, -7.0), (2, 2, 3.0)]);
    }

    #[test]
    fn scaled_and_added() {
        let q = random_qubo(4, 9);
        let doubled = q.scaled(2.0);
        let sum = q.try_add(&q).unwrap();
        assert_eq!(doubled, sum);
        assert!(matches!(
            q.try_add(&QuboMatrix::zeros(5)),
            Err(QuboError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn embedding_preserves_energy_on_prefix() {
        let q = random_qubo(4, 11);
        let big = q.embedded(7);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let x = Assignment::random(4, &mut rng);
            let ext = x.extended(3);
            assert!((q.energy(&x) - big.energy(&ext)).abs() < 1e-12);
        }
    }

    #[test]
    fn display_small_matrix() {
        let mut q = QuboMatrix::zeros(2);
        q.set(0, 1, 1.0);
        let s = format!("{q}");
        assert!(s.contains("dim=2"));
        assert!(s.contains("nnz=1"));
    }
}
