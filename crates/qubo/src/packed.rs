//! Bit-parallel 64-replica local fields: `u64` spin bitplanes with
//! per-lane maintained fields.
//!
//! A replica grid (every `BatchRunner` study cell, every service job)
//! runs the *same* CSR sweep 64 times over independent spin
//! configurations. [`PackedReplicaState`] packs those 64 replicas into
//! one state: variable `i`'s spins across all replicas live in the 64
//! bits of `planes[i]` (bit `k` = lane `k`), and the maintained local
//! fields `h_i = Q_ii + Σ Q_ij·x_j` live lane-major in
//! `fields[i·64 + k]`. One neighbor walk of row `i` then serves all 64
//! lanes: a commit takes a 64-bit mask of accepting lanes, toggles the
//! plane word with one XOR, and updates neighbor fields only for the
//! set lanes — O(deg(i) · popcount(mask)) instead of 64 separate
//! O(deg(i)) walks, with the CSR row loaded once.
//!
//! # Bit-identity contract
//!
//! Lane `k` of a packed state is *bit-identical* to an independent
//! scalar [`LocalFieldState`](crate::LocalFieldState) replica at all
//! times, because every float op matches one-for-one:
//!
//! * both walk the same [`CsrNeighbors`] rows in the same ascending
//!   order (shared construction);
//! * a masked commit applies `+v` to lanes turning on and `-v` to
//!   lanes turning off — IEEE-identical to the scalar
//!   `field += sign·v` update;
//! * each lane keeps its *own* commit counter, so the periodic
//!   anti-drift refresh fires for lane `k` exactly when it would for
//!   the scalar replica `k` (same
//!   [`DEFAULT_REFRESH_INTERVAL`],
//!   same recompute order).
//!
//! The lane extraction/insertion round-trip and field-equality laws
//! are pinned by proptests in `tests/properties.rs`; the run-level
//! packed-vs-64-scalar law lives in `hycim-core`.

use crate::local_field::{CsrNeighbors, DEFAULT_REFRESH_INTERVAL};
use crate::{Assignment, QuboMatrix};

/// Number of replica lanes in a packed state — the bits of a `u64`.
pub const LANES: usize = 64;

/// 64 replicas' spins as `u64` bitplanes per variable, with maintained
/// per-replica local fields over shared CSR neighbor lists.
///
/// # Example
///
/// ```
/// use hycim_qubo::{Assignment, PackedReplicaState, QuboMatrix, LANES};
///
/// let mut q = QuboMatrix::zeros(2);
/// q.set(0, 0, -4.0);
/// q.set(0, 1, 6.0);
/// let initials = vec![Assignment::zeros(2); LANES];
/// let mut ps = PackedReplicaState::new(&q, &initials);
///
/// assert_eq!(ps.flip_delta(0, 17), -4.0);   // lane 17 probes bit 0
/// ps.commit_masked(0, 1 << 17);             // only lane 17 flips
/// assert_eq!(ps.spin(0, 17), true);
/// assert_eq!(ps.flip_delta(1, 17), 6.0);    // lane 17 feels the coupling
/// assert_eq!(ps.flip_delta(1, 16), 0.0);    // lane 16 untouched
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackedReplicaState {
    csr: CsrNeighbors,
    /// `planes[i]` bit `k` = lane `k`'s value of variable `i`.
    planes: Vec<u64>,
    /// Maintained fields, lane-major: `fields[i * LANES + k]`.
    fields: Vec<f64>,
    /// Per-lane commits since that lane's last full recompute.
    commits: [usize; LANES],
    /// Commits between per-lane recomputes; `0` disables refreshing.
    refresh_interval: usize,
}

impl PackedReplicaState {
    /// Builds the packed state from exactly [`LANES`] initial
    /// configurations (lane `k` starts at `initials[k]`).
    /// O(n + LANES·nnz).
    ///
    /// # Panics
    ///
    /// Panics if `initials.len() != LANES` or any configuration's
    /// length differs from `q.dim()`.
    pub fn new(q: &QuboMatrix, initials: &[Assignment]) -> Self {
        assert_eq!(
            initials.len(),
            LANES,
            "packed state needs exactly {LANES} initial configurations, got {}",
            initials.len()
        );
        let n = q.dim();
        let mut planes = vec![0u64; n];
        for (k, x) in initials.iter().enumerate() {
            assert_eq!(
                x.len(),
                n,
                "lane {k} assignment length {} does not match dim {n}",
                x.len()
            );
            for (i, plane) in planes.iter_mut().enumerate() {
                if x.get(i) {
                    *plane |= 1u64 << k;
                }
            }
        }
        let csr = CsrNeighbors::build(q);
        let mut state = Self {
            csr,
            planes,
            fields: vec![0.0; n * LANES],
            commits: [0; LANES],
            refresh_interval: DEFAULT_REFRESH_INTERVAL,
        };
        state.refresh_all();
        state
    }

    /// Sets the number of commits between per-lane field recomputes
    /// (`0` = never refresh). Scalar equivalence holds when the scalar
    /// replicas use the same interval.
    pub fn with_refresh_interval(mut self, interval: usize) -> Self {
        self.refresh_interval = interval;
        self
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.csr.dim()
    }

    /// The bitplane of variable `i`: bit `k` is lane `k`'s value.
    pub fn plane(&self, i: usize) -> u64 {
        self.planes[i]
    }

    /// All bitplanes (one word per variable) — lane snapshots for
    /// best-so-far tracking copy single bit columns out of this.
    pub fn planes(&self) -> &[u64] {
        &self.planes
    }

    /// Lane `k`'s value of variable `i`.
    pub fn spin(&self, i: usize, k: usize) -> bool {
        (self.planes[i] >> k) & 1 == 1
    }

    /// Lane `k`'s maintained field `h_i`.
    pub fn field(&self, i: usize, k: usize) -> f64 {
        self.fields[i * LANES + k]
    }

    /// All 64 lanes' fields of variable `i` (lane `k` at index `k`).
    pub fn fields_row(&self, i: usize) -> &[f64] {
        &self.fields[i * LANES..(i + 1) * LANES]
    }

    /// Lane `k`'s energy change of flipping bit `i`: `+h_i` for a 0→1
    /// flip, `−h_i` for 1→0 — the same O(1) probe as the scalar
    /// [`LocalFieldState::flip_delta`](crate::LocalFieldState::flip_delta).
    pub fn flip_delta(&self, i: usize, k: usize) -> f64 {
        if self.spin(i, k) {
            -self.field(i, k)
        } else {
            self.field(i, k)
        }
    }

    /// Lane `k`'s commits since its last full recompute (diagnostic).
    pub fn commits_since_refresh(&self, k: usize) -> usize {
        self.commits[k]
    }

    /// Lane `k`'s objective energy `xᵀQx`, recomputed from the CSR
    /// structure in O(n + nnz) — *bit-identical* to
    /// [`QuboMatrix::energy`] on the lane's configuration. The walk
    /// visits the same `(i, j)` terms in the same ascending order as
    /// the dense triangular scan; the terms it skips are structural
    /// zeros, whose `+0.0`/`−0.0` contributions cannot move any
    /// partial sum (no partial sum is ever `−0.0`: the accumulator
    /// starts at `+0.0` and IEEE exact cancellation rounds to `+0.0`).
    pub fn lane_energy(&self, k: usize) -> f64 {
        let mut e = 0.0;
        for i in 0..self.dim() {
            if (self.planes[i] >> k) & 1 != 1 {
                continue;
            }
            e += self.csr.diag[i];
            for t in self.csr.offsets[i]..self.csr.offsets[i + 1] {
                let j = self.csr.idx[t];
                if j > i && (self.planes[j] >> k) & 1 == 1 {
                    e += self.csr.val[t];
                }
            }
        }
        e
    }

    /// Extracts lane `k`'s configuration as an [`Assignment`]. O(n).
    pub fn lane_assignment(&self, k: usize) -> Assignment {
        Assignment::from_bits((0..self.dim()).map(|i| self.spin(i, k)))
    }

    /// Overwrites lane `k` with configuration `x` and recomputes its
    /// fields from scratch (resetting its commit counter), leaving
    /// every other lane untouched. O(n + nnz).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the state's dimension.
    pub fn set_lane_assignment(&mut self, k: usize, x: &Assignment) {
        assert_eq!(
            x.len(),
            self.dim(),
            "assignment length {} does not match dim {}",
            x.len(),
            self.dim()
        );
        let bit = 1u64 << k;
        for (i, plane) in self.planes.iter_mut().enumerate() {
            if x.get(i) {
                *plane |= bit;
            } else {
                *plane &= !bit;
            }
        }
        self.refresh_lane(k);
    }

    /// Commits a flip of bit `i` in every lane whose bit is set in
    /// `mask`: one XOR toggles the plane word, then each neighbor
    /// field is updated only for the accepting lanes —
    /// O(deg(i) · popcount(mask)) float ops. Lanes turning `i` on get
    /// `+Q_ij`, lanes turning it off get `−Q_ij`, in ascending CSR
    /// order per lane (bit-identical to the scalar commit). Per-lane
    /// commit counters advance and may trigger that lane's anti-drift
    /// refresh.
    pub fn commit_masked(&mut self, i: usize, mask: u64) {
        if mask == 0 {
            return;
        }
        let new_word = self.planes[i] ^ mask;
        self.planes[i] = new_word;
        let set_mask = new_word & mask; // lanes where x_i turned on
        let clear_mask = !new_word & mask; // lanes where x_i turned off
        for e in self.csr.offsets[i]..self.csr.offsets[i + 1] {
            let base = self.csr.idx[e] * LANES;
            let v = self.csr.val[e];
            let mut m = set_mask;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                self.fields[base + k] += v;
                m &= m - 1;
            }
            let mut m = clear_mask;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                self.fields[base + k] -= v;
                m &= m - 1;
            }
        }
        let mut m = mask;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            self.commits[k] += 1;
            if self.refresh_interval > 0 && self.commits[k] >= self.refresh_interval {
                self.refresh_lane(k);
            }
            m &= m - 1;
        }
    }

    /// Recomputes lane `k`'s fields from scratch, in the same CSR
    /// order as the scalar
    /// [`LocalFieldState::refresh`](crate::LocalFieldState::refresh),
    /// and zeroes its commit counter. O(n + nnz).
    pub fn refresh_lane(&mut self, k: usize) {
        for i in 0..self.dim() {
            let mut h = self.csr.diag[i];
            for e in self.csr.offsets[i]..self.csr.offsets[i + 1] {
                if (self.planes[self.csr.idx[e]] >> k) & 1 == 1 {
                    h += self.csr.val[e];
                }
            }
            self.fields[i * LANES + k] = h;
        }
        self.commits[k] = 0;
    }

    /// Recomputes every lane's fields from scratch. O(LANES·(n + nnz)).
    pub fn refresh_all(&mut self) {
        for k in 0..LANES {
            self.refresh_lane(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalFieldState;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse_qubo(n: usize, density: f64, seed: u64) -> QuboMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = QuboMatrix::zeros(n);
        for i in 0..n {
            q.set(i, i, rng.random_range(-10.0..10.0));
            for j in (i + 1)..n {
                if rng.random_bool(density) {
                    q.set(i, j, rng.random_range(-10.0..10.0));
                }
            }
        }
        q
    }

    fn random_initials(n: usize, seed: u64) -> Vec<Assignment> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..LANES)
            .map(|_| Assignment::random(n, &mut rng))
            .collect()
    }

    #[test]
    fn lanes_round_trip_initial_configurations() {
        let q = random_sparse_qubo(13, 0.4, 1);
        let initials = random_initials(13, 2);
        let ps = PackedReplicaState::new(&q, &initials);
        for (k, x) in initials.iter().enumerate() {
            assert_eq!(&ps.lane_assignment(k), x, "lane {k}");
        }
    }

    #[test]
    fn initial_fields_match_scalar_replicas_exactly() {
        let q = random_sparse_qubo(17, 0.3, 3);
        let initials = random_initials(17, 4);
        let ps = PackedReplicaState::new(&q, &initials);
        for (k, x) in initials.iter().enumerate() {
            let lf = LocalFieldState::new(&q, x);
            for i in 0..17 {
                assert_eq!(ps.field(i, k), lf.field(i), "lane {k} field {i}");
                assert_eq!(
                    ps.flip_delta(i, k),
                    lf.flip_delta(x, i),
                    "lane {k} delta {i}"
                );
            }
        }
    }

    #[test]
    fn masked_commits_track_64_scalar_walks_bit_identically() {
        let q = random_sparse_qubo(11, 0.5, 5);
        let initials = random_initials(11, 6);
        let mut ps = PackedReplicaState::new(&q, &initials).with_refresh_interval(7);
        let mut scalars: Vec<(Assignment, LocalFieldState)> = initials
            .iter()
            .map(|x| {
                (
                    x.clone(),
                    LocalFieldState::new(&q, x).with_refresh_interval(7),
                )
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..300 {
            let i = rng.random_range(0..11);
            let mask: u64 = rng.random();
            ps.commit_masked(i, mask);
            for (k, (x, lf)) in scalars.iter_mut().enumerate() {
                if (mask >> k) & 1 == 1 {
                    x.flip(i);
                    lf.commit_flip(x, i);
                }
                assert_eq!(
                    ps.lane_assignment(k),
                    *x,
                    "lane {k} configuration diverged at step {step}"
                );
                for v in 0..11 {
                    assert_eq!(
                        ps.field(v, k).to_bits(),
                        lf.field(v).to_bits(),
                        "lane {k} field {v} diverged at step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn lane_energy_matches_the_dense_triangular_scan_bitwise() {
        for seed in 0..5 {
            let q = random_sparse_qubo(23, 0.3, seed);
            let initials = random_initials(23, seed + 100);
            let ps = PackedReplicaState::new(&q, &initials);
            for (k, x) in initials.iter().enumerate() {
                assert_eq!(
                    ps.lane_energy(k).to_bits(),
                    q.energy(x).to_bits(),
                    "seed {seed} lane {k} energy diverged from QuboMatrix::energy"
                );
            }
        }
    }

    #[test]
    fn set_lane_assignment_rewrites_one_lane_only() {
        let q = random_sparse_qubo(9, 0.5, 8);
        let initials = random_initials(9, 9);
        let mut ps = PackedReplicaState::new(&q, &initials);
        let replacement = Assignment::ones_vec(9);
        ps.set_lane_assignment(31, &replacement);
        assert_eq!(ps.lane_assignment(31), replacement);
        assert_eq!(ps.commits_since_refresh(31), 0);
        let lf = LocalFieldState::new(&q, &replacement);
        for i in 0..9 {
            assert_eq!(ps.field(i, 31).to_bits(), lf.field(i).to_bits());
        }
        for (k, x) in initials.iter().enumerate() {
            if k != 31 {
                assert_eq!(&ps.lane_assignment(k), x, "lane {k} was disturbed");
            }
        }
    }

    #[test]
    fn per_lane_refresh_counters_fire_independently() {
        let q = random_sparse_qubo(6, 0.6, 10);
        let initials = vec![Assignment::zeros(6); LANES];
        let mut ps = PackedReplicaState::new(&q, &initials).with_refresh_interval(3);
        // Lane 0 commits twice, lane 1 commits three times (refreshes).
        ps.commit_masked(0, 0b11);
        ps.commit_masked(1, 0b10);
        ps.commit_masked(2, 0b11);
        assert_eq!(ps.commits_since_refresh(0), 2);
        assert_eq!(
            ps.commits_since_refresh(1),
            0,
            "lane 1 should have refreshed"
        );
    }

    #[test]
    #[should_panic(expected = "exactly 64")]
    fn rejects_wrong_lane_count() {
        let q = QuboMatrix::zeros(3);
        let _ = PackedReplicaState::new(&q, &[Assignment::zeros(3)]);
    }

    #[test]
    fn commit_with_empty_mask_is_a_no_op() {
        let q = random_sparse_qubo(5, 0.5, 11);
        let initials = random_initials(5, 12);
        let mut ps = PackedReplicaState::new(&q, &initials);
        let before = ps.clone();
        ps.commit_masked(2, 0);
        assert_eq!(ps, before);
    }
}
