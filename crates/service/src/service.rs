//! The worker pool: a bounded job queue drained by OS threads, with
//! submit / poll / fetch / cancel endpoints safe to call from any
//! number of caller threads at once.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use hycim_cop::CopProblem;
use hycim_core::{default_threads, replica_seed, Engine};
use hycim_obs::{Counter, Event, Gauge, Histogram, ObsRegistry};

use crate::{FetchError, JobId, JobResult, JobStatus, SubmitError};

/// A finished job's payload with its concrete problem type erased, so
/// heterogeneous jobs can share one queue and one result store.
type ErasedResult = Box<dyn Any + Send>;

/// A queued unit of work: runs the solve and returns the erased
/// result. Stored until a worker picks it up (or cancellation drops
/// it).
type ErasedTask = Box<dyn FnOnce() -> ErasedResult + Send>;

/// Sizing of a [`JobService`]: worker-thread count and the queue
/// bound.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    workers: usize,
    queue_capacity: usize,
    obs: Option<Arc<ObsRegistry>>,
}

impl ServiceConfig {
    /// Default sizing: one worker per available core (the
    /// [`default_threads`] resolution, i.e. `HYCIM_THREADS` is
    /// honored) and a 1024-job queue bound.
    pub fn new() -> Self {
        Self {
            workers: default_threads(),
            queue_capacity: 1024,
            obs: None,
        }
    }

    /// Overrides the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Overrides the bound on *waiting* jobs (running jobs do not
    /// count against it). Submits beyond the bound fail with
    /// [`SubmitError::QueueFull`].
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity == 0`.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        assert!(queue_capacity > 0, "need a non-empty queue");
        self.queue_capacity = queue_capacity;
        self
    }

    /// Publishes the service's metrics and job-lifecycle events into
    /// `obs` (under `service.*` names — see the `hycim-obs` crate
    /// docs). Without this the service keeps a private registry,
    /// readable via [`JobService::obs`].
    pub fn with_obs(mut self, obs: Arc<ObsRegistry>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Configured worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Configured queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// What [`JobService::dispose`] did, by the lifecycle stage it found
/// the job in — decided atomically under the service lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisposeOutcome {
    /// The id is untracked (never submitted, or already fetched or
    /// disposed).
    Unknown,
    /// The job was still queued: it was cancelled and its entry
    /// dropped; it will never run.
    Cancelled,
    /// The job was running: its entry is flagged and will be dropped
    /// by the worker the moment the solve finishes, result discarded.
    Deferred,
    /// The job was already terminal: its retained entry (and any
    /// unfetched result) was dropped.
    Discarded,
}

impl DisposeOutcome {
    /// Stable text tag for carrying the outcome across a wire.
    pub fn tag(self) -> &'static str {
        match self {
            DisposeOutcome::Unknown => "unknown",
            DisposeOutcome::Cancelled => "cancelled",
            DisposeOutcome::Deferred => "deferred",
            DisposeOutcome::Discarded => "discarded",
        }
    }

    /// Parses a [`tag`](Self::tag).
    pub fn from_tag(tag: &str) -> Option<Self> {
        [
            DisposeOutcome::Unknown,
            DisposeOutcome::Cancelled,
            DisposeOutcome::Deferred,
            DisposeOutcome::Discarded,
        ]
        .into_iter()
        .find(|o| o.tag() == tag)
    }
}

/// Book-keeping of one job. The task is taken when a worker starts
/// it; exactly one of `result` / `error` is set once terminal (none
/// for `Cancelled`).
struct JobEntry {
    status: JobStatus,
    task: Option<ErasedTask>,
    result: Option<ErasedResult>,
    error: Option<String>,
    /// Set by [`JobService::forget`] on a running job: the completion
    /// path drops the entry instead of storing its result.
    forgotten: bool,
    /// When the job entered the queue — the start of the
    /// submit→fetch latency observation.
    submitted: Instant,
}

/// Mutable service state behind one mutex: the wait queue, the job
/// table, and the id counter. One lock (rather than per-job locks)
/// keeps the invariants simple; every critical section is O(1) or
/// O(queue) and never runs a solve.
struct State {
    queue: VecDeque<JobId>,
    jobs: HashMap<u64, JobEntry>,
    next_id: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes workers when a job is queued or shutdown begins.
    work_cv: Condvar,
    /// Wakes [`JobService::wait`] callers when any job turns terminal.
    done_cv: Condvar,
    queue_capacity: usize,
    metrics: ServiceMetrics,
}

/// The service's registry handle plus cached metric handles, so the
/// submit/complete paths never re-lock the registry's name table.
struct ServiceMetrics {
    obs: Arc<ObsRegistry>,
    submitted: Arc<Counter>,
    rejected_queue_full: Arc<Counter>,
    jobs_done: Arc<Counter>,
    jobs_failed: Arc<Counter>,
    jobs_cancelled: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    submit_to_fetch: Arc<Histogram>,
}

impl ServiceMetrics {
    fn new(obs: Arc<ObsRegistry>) -> Self {
        Self {
            submitted: obs.counter("service.submitted"),
            rejected_queue_full: obs.counter("service.rejected_queue_full"),
            jobs_done: obs.counter("service.jobs_done"),
            jobs_failed: obs.counter("service.jobs_failed"),
            jobs_cancelled: obs.counter("service.jobs_cancelled"),
            queue_depth: obs.gauge("service.queue_depth"),
            submit_to_fetch: obs.histogram("timing.service.submit_to_fetch_seconds"),
            obs,
        }
    }

    /// Counts `n` cancellations and emits their lifecycle events.
    fn cancelled(&self, ids: impl IntoIterator<Item = JobId>) {
        let mut n = 0;
        for id in ids {
            self.obs.tracer().record(Event::JobCancelled { job: id.0 });
            n += 1;
        }
        self.jobs_cancelled.add(n);
    }
}

/// A running solver service: submit jobs from any thread, poll their
/// [`JobStatus`], fetch typed [`JobResult`]s. Dropping the service
/// (or calling [`shutdown`](Self::shutdown)) stops accepting new
/// jobs, drains the queue, and joins the workers.
///
/// See the [crate docs](crate) for the determinism guarantee and a
/// usage example.
pub struct JobService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl JobService {
    /// Spawns the worker pool and returns the running service.
    pub fn start(config: ServiceConfig) -> Self {
        let obs = config.obs.unwrap_or_default();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                next_id: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            queue_capacity: config.queue_capacity,
            metrics: ServiceMetrics::new(obs),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hycim-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { shared, workers }
    }

    /// Submits one solve: the worker will run `engine.solve(seed)`,
    /// so the result is bit-identical to that direct call. Returns
    /// immediately with the job handle.
    ///
    /// The engine is shared by `Arc` — submitting many seeds against
    /// one engine clones no problem data.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] under backpressure,
    /// [`SubmitError::ShuttingDown`] after shutdown began.
    pub fn submit<P, E>(&self, engine: &Arc<E>, seed: u64) -> Result<JobId, SubmitError>
    where
        P: CopProblem + 'static,
        E: Engine<P> + 'static,
    {
        let engine = Arc::clone(engine);
        self.enqueue(move |id| {
            Box::new(move || -> ErasedResult {
                let backend = engine.backend();
                let solution = engine.solve(seed);
                Box::new(JobResult {
                    id,
                    backend,
                    seeds: vec![seed],
                    solutions: vec![solution],
                })
            })
        })
    }

    /// Submits a multi-start batch as **one** job: `replicas`
    /// independent solves whose seeds come from
    /// [`replica_seed`]`(root_seed, 0, k)` — exactly the
    /// [`BatchRunner::run`](hycim_core::BatchRunner::run) derivation,
    /// so the fetched solutions are bit-identical to a `BatchRunner`
    /// run of the same `(engine, replicas, root_seed)` at any thread
    /// count. Replicas run serially on one worker; submit several
    /// batches (or single solves) to spread load across workers.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] under backpressure,
    /// [`SubmitError::ShuttingDown`] after shutdown began.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn submit_batch<P, E>(
        &self,
        engine: &Arc<E>,
        replicas: usize,
        root_seed: u64,
    ) -> Result<JobId, SubmitError>
    where
        P: CopProblem + 'static,
        E: Engine<P> + 'static,
    {
        assert!(replicas > 0, "need at least one replica");
        let engine = Arc::clone(engine);
        self.enqueue(move |id| {
            Box::new(move || -> ErasedResult {
                let backend = engine.backend();
                let seeds: Vec<u64> = (0..replicas)
                    .map(|k| replica_seed(root_seed, 0, k as u64))
                    .collect();
                let solutions = seeds.iter().map(|&s| engine.solve(s)).collect();
                Box::new(JobResult {
                    id,
                    backend,
                    seeds,
                    solutions,
                })
            })
        })
    }

    /// Submits an arbitrary computation as a job: the worker runs
    /// `task()` and stores its value for [`fetch_value`](Self::fetch_value).
    /// This is the bridge the wire protocol (`hycim-net`) builds on —
    /// a network worker submits "reconstruct the engine and solve a
    /// shard" closures whose results are plain serializable values,
    /// with the same lifecycle (poll, cancel, panic isolation) as
    /// engine jobs.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] under backpressure,
    /// [`SubmitError::ShuttingDown`] after shutdown began.
    pub fn submit_with<R, F>(&self, task: F) -> Result<JobId, SubmitError>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        self.enqueue(move |_| Box::new(move || -> ErasedResult { Box::new(task()) }))
    }

    /// Takes the typed value of a terminal [`submit_with`](Self::submit_with)
    /// job. Same consumption semantics as [`fetch`](Self::fetch): a
    /// successful (or cancelled/failed) fetch removes the entry; a
    /// type mismatch leaves it in place.
    ///
    /// # Errors
    ///
    /// As [`fetch`](Self::fetch), with [`FetchError::WrongType`] when
    /// `R` is not the closure's return type.
    pub fn fetch_value<R>(&self, id: JobId) -> Result<R, FetchError>
    where
        R: Send + 'static,
    {
        let mut state = self.shared.state.lock().expect("service state lock");
        let entry = state.jobs.get_mut(&id.0).ok_or(FetchError::Unknown(id))?;
        match entry.status {
            JobStatus::Queued | JobStatus::Running => Err(FetchError::NotFinished(entry.status)),
            JobStatus::Cancelled => {
                state.jobs.remove(&id.0);
                Err(FetchError::Cancelled(id))
            }
            JobStatus::Failed => {
                let entry = state.jobs.remove(&id.0).expect("entry just observed");
                Err(FetchError::Failed {
                    id,
                    message: entry.error.unwrap_or_else(|| "unknown panic".into()),
                })
            }
            JobStatus::Done => {
                let erased = entry.result.take().expect("done jobs hold a result");
                let latency = entry.submitted.elapsed();
                match erased.downcast::<R>() {
                    Ok(value) => {
                        state.jobs.remove(&id.0);
                        self.shared
                            .metrics
                            .submit_to_fetch
                            .record(latency.as_secs_f64());
                        Ok(*value)
                    }
                    Err(erased) => {
                        entry.result = Some(erased);
                        Err(FetchError::WrongType(id))
                    }
                }
            }
        }
    }

    /// Current status of a job, or `None` when the id is unknown or
    /// its result was already fetched.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let state = self.shared.state.lock().expect("service state lock");
        state.jobs.get(&id.0).map(|entry| entry.status)
    }

    /// Blocks until the job reaches a terminal state and returns it
    /// (`None` when the id is unknown or already fetched — possibly
    /// by a concurrent fetcher while waiting).
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut state = self.shared.state.lock().expect("service state lock");
        loop {
            match state.jobs.get(&id.0) {
                None => return None,
                Some(entry) if entry.status.is_terminal() => return Some(entry.status),
                Some(_) => {
                    state = self.shared.done_cv.wait(state).expect("service state lock");
                }
            }
        }
    }

    /// Takes the typed result of a terminal job. A successful fetch
    /// (and a fetch of a cancelled or failed job) **consumes** the
    /// entry: subsequent [`status`](Self::status) calls return `None`
    /// and the id can be garbage-collected. A type mismatch leaves
    /// the entry in place.
    ///
    /// # Errors
    ///
    /// [`FetchError::NotFinished`] while queued/running,
    /// [`FetchError::Cancelled`] / [`FetchError::Failed`] for those
    /// terminal states, [`FetchError::WrongType`] when `P` is not the
    /// problem type the job was submitted with,
    /// [`FetchError::Unknown`] for untracked ids.
    pub fn fetch<P>(&self, id: JobId) -> Result<JobResult<P>, FetchError>
    where
        P: CopProblem + 'static,
    {
        let mut state = self.shared.state.lock().expect("service state lock");
        let entry = state.jobs.get_mut(&id.0).ok_or(FetchError::Unknown(id))?;
        match entry.status {
            JobStatus::Queued | JobStatus::Running => Err(FetchError::NotFinished(entry.status)),
            JobStatus::Cancelled => {
                state.jobs.remove(&id.0);
                Err(FetchError::Cancelled(id))
            }
            JobStatus::Failed => {
                let entry = state.jobs.remove(&id.0).expect("entry just observed");
                Err(FetchError::Failed {
                    id,
                    message: entry.error.unwrap_or_else(|| "unknown panic".into()),
                })
            }
            JobStatus::Done => {
                let erased = entry.result.take().expect("done jobs hold a result");
                let latency = entry.submitted.elapsed();
                match erased.downcast::<JobResult<P>>() {
                    Ok(result) => {
                        state.jobs.remove(&id.0);
                        self.shared
                            .metrics
                            .submit_to_fetch
                            .record(latency.as_secs_f64());
                        Ok(*result)
                    }
                    Err(erased) => {
                        // Wrong type requested: restore the result so a
                        // correctly-typed fetch still succeeds.
                        entry.result = Some(erased);
                        Err(FetchError::WrongType(id))
                    }
                }
            }
        }
    }

    /// [`wait`](Self::wait) + [`fetch`](Self::fetch) in one call: the
    /// blocking convenience for callers that have nothing else to do.
    ///
    /// # Errors
    ///
    /// As [`fetch`](Self::fetch), minus `NotFinished`.
    pub fn wait_fetch<P>(&self, id: JobId) -> Result<JobResult<P>, FetchError>
    where
        P: CopProblem + 'static,
    {
        self.wait(id);
        self.fetch(id)
    }

    /// Cancels a job if it is still queued: true when this call won
    /// the race (the job will never run), false when the job already
    /// started, finished, or is unknown. Running jobs cannot be
    /// interrupted — a solve is a pure function with no safe
    /// cancellation point.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = self.shared.state.lock().expect("service state lock");
        let Some(entry) = state.jobs.get_mut(&id.0) else {
            return false;
        };
        if entry.status != JobStatus::Queued {
            return false;
        }
        entry.status = JobStatus::Cancelled;
        entry.task = None;
        state.queue.retain(|&queued| queued != id);
        self.shared
            .metrics
            .queue_depth
            .set(state.queue.len() as u64);
        self.shared.metrics.cancelled([id]);
        drop(state);
        self.shared.done_cv.notify_all();
        true
    }

    /// Drops a job's book-keeping without fetching its result: the
    /// disposal path for fire-and-forget submissions and for jobs
    /// whose caller lost interest after they started running (where
    /// [`cancel`](Self::cancel) no longer applies). A queued job is
    /// cancelled first; a running job's entry is dropped as soon as
    /// its worker finishes, its result discarded. Returns false when
    /// the id is unknown or already fetched.
    ///
    /// The service retains every unfetched terminal result (that is
    /// what makes fetch-after-completion work), so callers that
    /// abandon jobs **must** forget them or the result store grows
    /// with each abandoned job.
    ///
    /// Equivalent to checking [`dispose`](Self::dispose) against
    /// [`DisposeOutcome::Unknown`].
    pub fn forget(&self, id: JobId) -> bool {
        !matches!(self.dispose(id), DisposeOutcome::Unknown)
    }

    /// [`forget`](Self::forget) with the outcome spelled out — what the
    /// wire protocol's `cancel` verb reports back. The whole decision
    /// runs under one lock acquisition, so a dispose racing a
    /// concurrent fetch (or a worker finishing the job) observes
    /// exactly one consistent lifecycle stage: a job can never end up
    /// half-disposed with a stuck `Running` entry.
    pub fn dispose(&self, id: JobId) -> DisposeOutcome {
        let mut state = self.shared.state.lock().expect("service state lock");
        let Some(entry) = state.jobs.get_mut(&id.0) else {
            return DisposeOutcome::Unknown;
        };
        let outcome = match entry.status {
            JobStatus::Queued => {
                // Cancel and drop the stub in the same critical
                // section (cancelled entries hold no result).
                entry.status = JobStatus::Cancelled;
                entry.task = None;
                state.queue.retain(|&queued| queued != id);
                state.jobs.remove(&id.0);
                self.shared
                    .metrics
                    .queue_depth
                    .set(state.queue.len() as u64);
                self.shared.metrics.cancelled([id]);
                DisposeOutcome::Cancelled
            }
            JobStatus::Running => {
                // The worker holds the task; flag the entry so the
                // completion path drops it instead of storing the
                // result.
                entry.forgotten = true;
                DisposeOutcome::Deferred
            }
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled => {
                state.jobs.remove(&id.0);
                DisposeOutcome::Discarded
            }
        };
        drop(state);
        if outcome == DisposeOutcome::Cancelled {
            self.shared.done_cv.notify_all();
        }
        outcome
    }

    /// Number of jobs the service is currently tracking (queued,
    /// running, or terminal-but-unfetched). A well-behaved caller that
    /// fetches or forgets every submission drives this back to zero —
    /// the leak assertion the protocol tests rely on.
    pub fn live_jobs(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("service state lock")
            .jobs
            .len()
    }

    /// Cancels every currently-queued job, returning how many were
    /// cancelled (running jobs are unaffected).
    pub fn cancel_queued(&self) -> usize {
        let mut state = self.shared.state.lock().expect("service state lock");
        let queued: Vec<JobId> = state.queue.drain(..).collect();
        for id in &queued {
            let entry = state.jobs.get_mut(&id.0).expect("queued job has an entry");
            entry.status = JobStatus::Cancelled;
            entry.task = None;
        }
        self.shared.metrics.queue_depth.set(0);
        self.shared.metrics.cancelled(queued.iter().copied());
        drop(state);
        if !queued.is_empty() {
            self.shared.done_cv.notify_all();
        }
        queued.len()
    }

    /// Number of jobs currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("service state lock")
            .queue
            .len()
    }

    /// The queue bound submits are checked against.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue_capacity
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The registry this service publishes into: the one handed to
    /// [`ServiceConfig::with_obs`], or the service's private registry
    /// otherwise. Metric names are listed in the `hycim-obs` docs
    /// (`service.submitted`, `service.queue_depth`,
    /// `timing.service.submit_to_fetch_seconds`, ...).
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.shared.metrics.obs
    }

    /// Stops accepting submissions, lets the workers drain every
    /// still-queued job, and joins them. Equivalent to dropping the
    /// service, as an explicit statement of intent.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Allocates an id under the lock, builds the task for it, and
    /// queues it — the single submit path both public submits share.
    /// Holding the lock across `make` keeps the capacity check and
    /// the push atomic (task construction is a few moves, no solving).
    fn enqueue(&self, make: impl FnOnce(JobId) -> ErasedTask) -> Result<JobId, SubmitError> {
        let metrics = &self.shared.metrics;
        let mut state = self.shared.state.lock().expect("service state lock");
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.queue_capacity {
            metrics.rejected_queue_full.inc();
            return Err(SubmitError::QueueFull {
                capacity: self.shared.queue_capacity,
            });
        }
        let id = JobId(state.next_id);
        state.next_id += 1;
        state.jobs.insert(
            id.0,
            JobEntry {
                status: JobStatus::Queued,
                task: Some(make(id)),
                result: None,
                error: None,
                forgotten: false,
                submitted: Instant::now(),
            },
        );
        state.queue.push_back(id);
        metrics.submitted.inc();
        metrics.queue_depth.set(state.queue.len() as u64);
        metrics
            .obs
            .tracer()
            .record(Event::JobSubmitted { job: id.0 });
        drop(state);
        self.shared.work_cv.notify_one();
        Ok(id)
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("service state lock");
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker: pop a job, run it outside the lock, record the
/// outcome. A panicking job is caught and recorded as `Failed`; the
/// worker survives. Exits once shutdown is flagged *and* the queue is
/// drained.
fn worker_loop(shared: &Shared) {
    let metrics = &shared.metrics;
    loop {
        let (id, task) = {
            let mut state = shared.state.lock().expect("service state lock");
            loop {
                if let Some(id) = state.queue.pop_front() {
                    let entry = state.jobs.get_mut(&id.0).expect("queued job has an entry");
                    entry.status = JobStatus::Running;
                    let task = entry.task.take().expect("queued job has a task");
                    metrics.queue_depth.set(state.queue.len() as u64);
                    metrics.obs.tracer().record(Event::JobStarted { job: id.0 });
                    break (id, task);
                }
                if state.shutdown {
                    return;
                }
                state = shared.work_cv.wait(state).expect("service state lock");
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(task));
        let mut state = shared.state.lock().expect("service state lock");
        let entry = state
            .jobs
            .get_mut(&id.0)
            .expect("running job keeps its entry");
        match &outcome {
            Ok(_) => {
                metrics.jobs_done.inc();
                metrics.obs.tracer().record(Event::JobDone { job: id.0 });
            }
            Err(_) => {
                metrics.jobs_failed.inc();
                metrics.obs.tracer().record(Event::JobFailed { job: id.0 });
            }
        }
        if entry.forgotten {
            // The caller disowned the job mid-run: discard instead of
            // retaining a result nobody will fetch.
            state.jobs.remove(&id.0);
        } else {
            match outcome {
                Ok(result) => {
                    entry.status = JobStatus::Done;
                    entry.result = Some(result);
                }
                Err(payload) => {
                    entry.status = JobStatus::Failed;
                    entry.error = Some(panic_message(payload.as_ref()));
                }
            }
        }
        drop(state);
        shared.done_cv.notify_all();
    }
}

/// Renders a caught panic payload as text (the common `&str` /
/// `String` payloads verbatim, anything else a placeholder).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hycim_core::{HyCimConfig, SoftwareEngine};

    fn maxcut_engine(nodes: usize) -> Arc<SoftwareEngine<hycim_cop::maxcut::MaxCut>> {
        let graph = hycim_cop::maxcut::MaxCut::random(nodes, 0.5, 1);
        Arc::new(
            SoftwareEngine::new(&graph, &HyCimConfig::default().with_sweeps(30))
                .expect("max-cut always encodes"),
        )
    }

    #[test]
    fn single_job_round_trip() {
        let engine = maxcut_engine(10);
        let service = JobService::start(ServiceConfig::new().with_workers(2));
        let id = service.submit(&engine, 5).unwrap();
        assert_eq!(service.wait(id), Some(JobStatus::Done));
        let result = service
            .fetch::<hycim_cop::maxcut::MaxCut>(id)
            .expect("done job fetches");
        assert_eq!(result.backend, "software");
        assert_eq!(result.seeds, vec![5]);
        assert_eq!(result.solution().assignment, engine.solve(5).assignment);
        // Fetch consumed the entry.
        assert_eq!(service.status(id), None);
        assert!(matches!(
            service.fetch::<hycim_cop::maxcut::MaxCut>(id),
            Err(FetchError::Unknown(_))
        ));
    }

    #[test]
    fn wrong_type_fetch_keeps_the_result() {
        let engine = maxcut_engine(8);
        let service = JobService::start(ServiceConfig::new().with_workers(1));
        let id = service.submit(&engine, 1).unwrap();
        service.wait(id);
        assert!(matches!(
            service.fetch::<hycim_cop::QkpInstance>(id),
            Err(FetchError::WrongType(_))
        ));
        // Entry survived; the right type still succeeds.
        assert!(service.fetch::<hycim_cop::maxcut::MaxCut>(id).is_ok());
    }

    #[test]
    fn batch_job_matches_batch_runner_seeds() {
        let engine = maxcut_engine(10);
        let service = JobService::start(ServiceConfig::new().with_workers(2));
        let id = service.submit_batch(&engine, 4, 99).unwrap();
        let result = service
            .wait_fetch::<hycim_cop::maxcut::MaxCut>(id)
            .expect("batch fetches");
        assert_eq!(result.replicas(), 4);
        let direct = hycim_core::BatchRunner::serial().run(engine.as_ref(), 4, 99);
        for (k, (ours, reference)) in result.solutions.iter().zip(&direct).enumerate() {
            assert_eq!(result.seeds[k], replica_seed(99, 0, k as u64));
            assert_eq!(ours.assignment, reference.assignment, "replica {k}");
            assert_eq!(ours.objective, reference.objective);
        }
    }

    #[test]
    fn best_solution_is_deterministic() {
        let engine = maxcut_engine(12);
        let service = JobService::start(ServiceConfig::new().with_workers(3));
        let id = service.submit_batch(&engine, 6, 7).unwrap();
        let result = service.wait_fetch::<hycim_cop::maxcut::MaxCut>(id).unwrap();
        let best = result.best();
        assert!(result
            .solutions
            .iter()
            .all(|s| s.objective >= best.objective || !s.feasible));
    }

    #[test]
    fn panicking_job_fails_without_killing_the_pool() {
        let engine = maxcut_engine(8);
        let service = JobService::start(ServiceConfig::new().with_workers(1));
        let id = service
            .enqueue(|_| Box::new(|| -> ErasedResult { panic!("intentional test panic") }))
            .unwrap();
        assert_eq!(service.wait(id), Some(JobStatus::Failed));
        match service.fetch::<hycim_cop::maxcut::MaxCut>(id) {
            Err(FetchError::Failed { message, .. }) => {
                assert!(message.contains("intentional test panic"))
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // The lone worker survived the panic and still serves jobs.
        let ok = service.submit(&engine, 3).unwrap();
        assert_eq!(service.wait(ok), Some(JobStatus::Done));
    }

    #[test]
    fn forget_disposes_of_every_lifecycle_stage() {
        let engine = maxcut_engine(10);
        let service = JobService::start(ServiceConfig::new().with_workers(1));

        // Unknown ids are a no-op.
        assert!(!service.forget(JobId(999)));

        // Done: the retained result is dropped without a fetch.
        let done = service.submit(&engine, 1).unwrap();
        service.wait(done);
        assert!(service.forget(done));
        assert_eq!(service.status(done), None);
        assert!(!service.forget(done), "already disposed");

        // Queued: behaves like cancel + dispose (the job never runs).
        let head = service.submit_batch(&engine, 64, 2).unwrap();
        let queued = service.submit(&engine, 3).unwrap();
        assert!(service.forget(queued));
        assert_eq!(service.status(queued), None);

        // Running: the completion path drops the entry.
        while service.status(head) == Some(JobStatus::Queued) {
            std::thread::yield_now();
        }
        if service.status(head) == Some(JobStatus::Running) {
            assert!(service.forget(head));
            while service.status(head).is_some() {
                std::thread::yield_now();
            }
        } else {
            // The worker already finished: forget still disposes.
            assert!(service.forget(head));
        }
        assert_eq!(service.status(head), None);
        assert!(matches!(
            service.fetch::<hycim_cop::maxcut::MaxCut>(head),
            Err(FetchError::Unknown(_))
        ));

        // The store is empty: nothing leaked.
        assert!(service.shared.state.lock().unwrap().jobs.is_empty());
    }

    #[test]
    fn value_jobs_round_trip_with_typed_fetch() {
        let service = JobService::start(ServiceConfig::new().with_workers(2));
        let id = service.submit_with(|| 6u64 * 7).unwrap();
        assert_eq!(service.wait(id), Some(JobStatus::Done));
        // Wrong type leaves the entry intact...
        assert!(matches!(
            service.fetch_value::<String>(id),
            Err(FetchError::WrongType(_))
        ));
        // ...the right type consumes it.
        assert_eq!(service.fetch_value::<u64>(id).unwrap(), 42);
        assert!(matches!(
            service.fetch_value::<u64>(id),
            Err(FetchError::Unknown(_))
        ));
        assert_eq!(service.live_jobs(), 0);
    }

    #[test]
    fn value_job_panics_surface_as_failed() {
        let service = JobService::start(ServiceConfig::new().with_workers(1));
        let id = service
            .submit_with(|| -> u64 { panic!("value job panic") })
            .unwrap();
        service.wait(id);
        match service.fetch_value::<u64>(id) {
            Err(FetchError::Failed { message, .. }) => {
                assert!(message.contains("value job panic"))
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(service.live_jobs(), 0);
    }

    #[test]
    fn dispose_reports_the_stage_it_found() {
        let engine = maxcut_engine(10);
        let service = JobService::start(ServiceConfig::new().with_workers(1));
        assert_eq!(service.dispose(JobId(404)), DisposeOutcome::Unknown);

        let done = service.submit(&engine, 1).unwrap();
        service.wait(done);
        assert_eq!(service.dispose(done), DisposeOutcome::Discarded);
        assert_eq!(service.dispose(done), DisposeOutcome::Unknown);

        // Park the worker on a long batch, then queue one more.
        let head = service.submit_batch(&engine, 64, 2).unwrap();
        let queued = service.submit(&engine, 3).unwrap();
        assert_eq!(service.dispose(queued), DisposeOutcome::Cancelled);
        assert_eq!(service.status(queued), None);

        while service.status(head) == Some(JobStatus::Queued) {
            std::thread::yield_now();
        }
        match service.dispose(head) {
            DisposeOutcome::Deferred => {
                // Flagged while running: the worker drops it on finish.
                while service.status(head).is_some() {
                    std::thread::yield_now();
                }
            }
            DisposeOutcome::Discarded => {} // worker already finished
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(service.live_jobs(), 0);
    }

    #[test]
    fn concurrent_dispose_and_fetch_never_strand_an_entry() {
        // The regression this guards: the old forget() took the lock
        // twice (cancel, then re-lock), so a fetch could interleave
        // and the second half would act on stale state. Hammer
        // dispose against fetch and the worker from three sides and
        // assert the job table always drains to empty.
        let engine = maxcut_engine(8);
        let service = Arc::new(JobService::start(ServiceConfig::new().with_workers(2)));
        for round in 0..40u64 {
            let id = service.submit(&engine, round).unwrap();
            let disposer = {
                let service = Arc::clone(&service);
                std::thread::spawn(move || service.dispose(id))
            };
            let fetcher = {
                let service = Arc::clone(&service);
                std::thread::spawn(move || service.fetch::<hycim_cop::maxcut::MaxCut>(id))
            };
            let disposed = disposer.join().unwrap();
            let fetched = fetcher.join().unwrap();
            // If the fetch only observed NotFinished, the dispose must
            // have claimed the entry (it existed at that point, so
            // Unknown would mean both sides lost it — the stranding).
            if matches!(fetched, Err(FetchError::NotFinished(_))) {
                assert_ne!(disposed, DisposeOutcome::Unknown, "round {round}");
            }
            // Whatever the interleaving, the entry drains: directly
            // (Cancelled/Discarded or a successful fetch) or via the
            // worker's forgotten-flag path (Deferred). Bounded wait so
            // a stranded entry fails the test instead of hanging it.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while service.status(id).is_some() {
                assert!(
                    std::time::Instant::now() < deadline,
                    "round {round}: entry stranded as {:?} after dispose={disposed:?} fetch={fetched:?}",
                    service.status(id)
                );
                std::thread::yield_now();
            }
        }
        assert_eq!(service.live_jobs(), 0);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let engine = maxcut_engine(10);
        let service = JobService::start(ServiceConfig::new().with_workers(1));
        let ids: Vec<JobId> = (0..5)
            .map(|seed| service.submit(&engine, seed).unwrap())
            .collect();
        let shared = Arc::clone(&service.shared);
        service.shutdown();
        // After shutdown every submitted job has completed.
        let state = shared.state.lock().unwrap();
        for id in ids {
            assert_eq!(state.jobs.get(&id.0).unwrap().status, JobStatus::Done);
        }
    }

    #[test]
    fn submit_after_shutdown_flag_is_rejected() {
        let engine = maxcut_engine(8);
        let service = JobService::start(ServiceConfig::new().with_workers(1));
        service.shared.state.lock().unwrap().shutdown = true;
        assert_eq!(
            service.submit(&engine, 1).unwrap_err(),
            SubmitError::ShuttingDown
        );
        // Clear the flag so Drop's join still works normally.
        service.shared.state.lock().unwrap().shutdown = false;
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replica_batch_panics() {
        let engine = maxcut_engine(8);
        let service = JobService::start(ServiceConfig::new().with_workers(1));
        let _ = service.submit_batch(&engine, 0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ServiceConfig::new().with_workers(0);
    }

    #[test]
    fn metrics_track_the_job_lifecycle() {
        let engine = maxcut_engine(10);
        let obs = Arc::new(hycim_obs::ObsRegistry::new());
        let service = JobService::start(
            ServiceConfig::new()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_obs(Arc::clone(&obs)),
        );

        // Done path, with a submit→fetch latency observation.
        let done = service.submit(&engine, 1).unwrap();
        service
            .wait_fetch::<hycim_cop::maxcut::MaxCut>(done)
            .unwrap();

        // QueueFull path: park the worker, fill the 1-slot queue,
        // then overflow it.
        let head = service.submit_batch(&engine, 64, 2).unwrap();
        while service.status(head) == Some(JobStatus::Queued) {
            std::thread::yield_now();
        }
        let queued = service.submit(&engine, 3).unwrap();
        let overflow = service.submit(&engine, 4);
        assert!(matches!(overflow, Err(SubmitError::QueueFull { .. })));

        // Cancelled path.
        assert!(service.cancel(queued));
        service.forget(head);
        service.wait(head);

        let snapshot = obs.snapshot();
        assert_eq!(snapshot.counter("service.submitted"), Some(3));
        assert_eq!(snapshot.counter("service.rejected_queue_full"), Some(1));
        assert_eq!(snapshot.counter("service.jobs_cancelled"), Some(1));
        assert!(snapshot.counter("service.jobs_done").unwrap() >= 1);
        assert_eq!(snapshot.counter("service.jobs_failed"), Some(0));
        assert_eq!(snapshot.gauge("service.queue_depth"), Some(0));
        assert_eq!(
            snapshot
                .histogram("timing.service.submit_to_fetch_seconds")
                .map(|h| h.count()),
            Some(1)
        );
        // The lifecycle shows up in the tracer too.
        let events = obs.tracer().events();
        assert!(events.contains(&hycim_obs::Event::JobSubmitted { job: done.0 }));
        assert!(events.contains(&hycim_obs::Event::JobDone { job: done.0 }));
        assert!(events.contains(&hycim_obs::Event::JobCancelled { job: queued.0 }));

        // A service without with_obs still tracks privately.
        let private = JobService::start(ServiceConfig::new().with_workers(1));
        let id = private.submit(&engine, 9).unwrap();
        private.wait(id);
        assert_eq!(
            private.obs().snapshot().counter("service.submitted"),
            Some(1)
        );
    }

    #[test]
    fn failed_jobs_are_counted() {
        let service = JobService::start(ServiceConfig::new().with_workers(1));
        let id = service
            .submit_with(|| -> u64 { panic!("metric test panic") })
            .unwrap();
        service.wait(id);
        assert_eq!(
            service.obs().snapshot().counter("service.jobs_failed"),
            Some(1)
        );
    }

    #[test]
    fn config_accessors() {
        let config = ServiceConfig::new().with_workers(3).with_queue_capacity(7);
        assert_eq!(config.workers(), 3);
        assert_eq!(config.queue_capacity(), 7);
        let service = JobService::start(config);
        assert_eq!(service.workers(), 3);
        assert_eq!(service.queue_capacity(), 7);
        assert_eq!(service.queued(), 0);
    }
}
