//! Error types of the submit and fetch halves of the service API.

use std::error::Error;
use std::fmt;

use crate::{JobId, JobStatus};

/// Why a submission was rejected. Both cases are immediate — the
/// service never blocks a submitting caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue already holds `capacity` waiting jobs
    /// (backpressure: retry after draining, or raise
    /// [`ServiceConfig::with_queue_capacity`](crate::ServiceConfig::with_queue_capacity)).
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The service is shutting down and no longer accepts jobs.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "job queue is full ({capacity} jobs waiting)")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl Error for SubmitError {}

/// Why a [`fetch`](crate::JobService::fetch) did not return a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// No job with this id is tracked: it was never submitted here, or
    /// its result was already fetched (fetching a terminal job
    /// consumes the entry).
    Unknown(JobId),
    /// The job has not reached a terminal state yet; the payload is
    /// the status observed (`Queued` or `Running`). Poll again or use
    /// [`wait_fetch`](crate::JobService::wait_fetch).
    NotFinished(JobStatus),
    /// The job was cancelled before it ran, so there is no result.
    Cancelled(JobId),
    /// The job panicked on its worker thread; the panic message is
    /// preserved.
    Failed {
        /// The failed job.
        id: JobId,
        /// Panic payload rendered as text.
        message: String,
    },
    /// The job completed, but its result is not a
    /// `JobResult<P>` for the requested problem type `P` (the entry is
    /// kept, so fetching with the right type still works).
    WrongType(JobId),
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::Unknown(id) => write!(f, "{id} is unknown (or already fetched)"),
            FetchError::NotFinished(status) => {
                write!(f, "job is not finished (status: {status})")
            }
            FetchError::Cancelled(id) => write!(f, "{id} was cancelled before running"),
            FetchError::Failed { id, message } => write!(f, "{id} failed: {message}"),
            FetchError::WrongType(id) => {
                write!(f, "{id} holds a result of a different problem type")
            }
        }
    }
}

impl Error for FetchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            SubmitError::QueueFull { capacity: 4 }.to_string(),
            "job queue is full (4 jobs waiting)"
        );
        assert!(SubmitError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        assert!(FetchError::Unknown(JobId(3)).to_string().contains("job-3"));
        assert!(FetchError::NotFinished(JobStatus::Running)
            .to_string()
            .contains("running"));
        assert!(FetchError::Failed {
            id: JobId(1),
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert!(FetchError::WrongType(JobId(2))
            .to_string()
            .contains("different problem type"));
    }
}
