//! Job-service front-end for the HyCiM solver stack: serve
//! [`Engine`](hycim_core::Engine) solves to **concurrent callers**
//! through a submit → poll → fetch API.
//!
//! The engine layer (`hycim-core`) is synchronous by design —
//! [`Engine::solve`](hycim_core::Engine::solve) is a pure function of
//! its seed, which is what makes batched runs deterministic. This
//! crate adds the missing serving piece from the ROADMAP: a
//! [`JobService`] owning a pool of OS worker threads and a **bounded**
//! job queue, so many callers can submit solve jobs without blocking
//! on each other and without unbounded queue buildup. No async
//! runtime is required: engines are `Send + Sync`, jobs are erased
//! into closures, and channel-style wakeups use a `Condvar`.
//!
//! Guarantees:
//!
//! * **Bit-identical results.** A job submitted with
//!   [`submit`](JobService::submit) runs `engine.solve(seed)` on a
//!   worker; the returned [`JobResult`] equals a direct call with the
//!   same seed. Batch jobs ([`submit_batch`](JobService::submit_batch))
//!   reuse [`replica_seed`](hycim_core::replica_seed), so they match
//!   [`BatchRunner`](hycim_core::BatchRunner) output for the same
//!   `(root_seed, replicas)` at any thread count.
//! * **Heterogeneous queue.** Jobs over different
//!   [`CopProblem`](hycim_cop::CopProblem) types share one queue
//!   (type-erased internally); [`fetch`](JobService::fetch) restores
//!   the typed [`JobResult<P>`].
//! * **Backpressure.** The queue is bounded; submits beyond capacity
//!   fail fast with [`SubmitError::QueueFull`] instead of queueing
//!   unboundedly.
//! * **Cancellation.** Queued jobs can be [cancelled](JobService::cancel)
//!   before a worker picks them up; a worker panic marks the job
//!   [`Failed`](JobStatus::Failed) without killing the pool.
//! * **Fetch-or-forget retention.** Every unfetched terminal result
//!   is retained so fetch-after-completion works; callers that
//!   abandon a job must [`forget`](JobService::forget) it (also the
//!   disposal path for jobs past the cancellation window), or the
//!   result store grows with each abandoned job.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use hycim_core::{Engine, HyCimConfig, HyCimEngine};
//! use hycim_cop::maxcut::MaxCut;
//! use hycim_service::{JobService, ServiceConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = MaxCut::random(12, 0.5, 1);
//! let engine = Arc::new(HyCimEngine::new(
//!     &graph,
//!     &HyCimConfig::default().with_sweeps(50),
//!     1,
//! )?);
//!
//! let service = JobService::start(ServiceConfig::default().with_workers(2));
//! let job = service.submit(&engine, 42)?;
//! let result = service.wait_fetch::<MaxCut>(job)?;
//!
//! // Bit-identical to the direct synchronous call.
//! assert_eq!(result.solution().assignment, engine.solve(42).assignment);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
mod job;
mod service;

pub use error::{FetchError, SubmitError};
pub use job::{JobId, JobResult, JobStatus};
pub use service::{DisposeOutcome, JobService, ServiceConfig};
