//! Job handles, lifecycle states, and the typed result envelope.

use std::fmt;

use hycim_cop::CopProblem;
use hycim_core::Solution;

/// Opaque handle of a submitted job, unique within one
/// [`JobService`](crate::JobService) for its whole lifetime (ids are
/// never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub(crate) u64);

impl JobId {
    /// Reconstructs a handle from its raw id — the deserialization
    /// entry point for protocol layers that carried the id across a
    /// wire. Presenting a fabricated id is harmless: every service
    /// endpoint treats an untracked id as unknown.
    pub fn from_raw(raw: u64) -> Self {
        JobId(raw)
    }

    /// The raw id (what [`from_raw`](Self::from_raw) inverts), for
    /// serializing the handle.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Lifecycle state of a job, as reported by
/// [`JobService::status`](crate::JobService::status).
///
/// The only transitions are `Queued → Running → {Done, Failed}` and
/// `Queued → Cancelled`; once a worker has picked a job up it runs to
/// completion (an [`Engine::solve`](hycim_core::Engine::solve) call
/// has no safe interruption point — it is a pure function of its
/// seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the bounded queue for a free worker.
    Queued,
    /// A worker thread is executing the solve.
    Running,
    /// Finished successfully; the result is ready to
    /// [`fetch`](crate::JobService::fetch).
    Done,
    /// The job panicked on its worker; fetching returns the panic
    /// message as [`FetchError::Failed`](crate::FetchError::Failed).
    Failed,
    /// Cancelled while still queued; it never ran.
    Cancelled,
}

impl JobStatus {
    /// Whether the job has reached a final state (`Done`, `Failed` or
    /// `Cancelled`) — i.e. polling will never observe another
    /// transition.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled
        )
    }

    /// Stable text tag (also the [`Display`](fmt::Display) form) for
    /// carrying the status across a wire.
    pub fn tag(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// Parses a [`tag`](Self::tag).
    pub fn from_tag(tag: &str) -> Option<Self> {
        [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Cancelled,
        ]
        .into_iter()
        .find(|s| s.tag() == tag)
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Typed result of a completed job: the solutions of every replica,
/// with the exact solve seed each one used — enough to reproduce any
/// entry with a direct [`Engine::solve`](hycim_core::Engine::solve)
/// call.
#[derive(Debug, Clone)]
pub struct JobResult<P: CopProblem> {
    /// The handle this result was fetched under.
    pub id: JobId,
    /// Backend tag of the engine that ran the job (`"hycim"`,
    /// `"dqubo"`, `"software"`).
    pub backend: &'static str,
    /// The solve seed of each replica, index-aligned with
    /// [`solutions`](Self::solutions). Single-solve jobs have exactly
    /// one entry; batch jobs hold
    /// [`replica_seed`](hycim_core::replica_seed)-derived seeds.
    pub seeds: Vec<u64>,
    /// One solution per replica, in replica order.
    pub solutions: Vec<Solution<P>>,
}

impl<P: CopProblem> JobResult<P> {
    /// The single solution of a one-shot job (equivalently: the first
    /// replica of a batch).
    ///
    /// # Panics
    ///
    /// Never panics for results produced by a
    /// [`JobService`](crate::JobService) — every job runs at least one
    /// replica.
    pub fn solution(&self) -> &Solution<P> {
        self.solutions
            .first()
            .expect("jobs run at least one replica")
    }

    /// The best solution across replicas: lowest objective, feasible
    /// preferred over infeasible (ties keep the earliest replica, so
    /// the choice is deterministic).
    pub fn best(&self) -> &Solution<P> {
        self.solutions
            .iter()
            .reduce(|best, s| {
                let better = (s.feasible, -s.objective) > (best.feasible, -best.objective);
                if better {
                    s
                } else {
                    best
                }
            })
            .expect("jobs run at least one replica")
    }

    /// Number of replicas the job ran.
    pub fn replicas(&self) -> usize {
        self.solutions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_terminality() {
        assert!(!JobStatus::Queued.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
        assert!(JobStatus::Done.is_terminal());
        assert!(JobStatus::Failed.is_terminal());
        assert!(JobStatus::Cancelled.is_terminal());
    }

    #[test]
    fn display_forms() {
        assert_eq!(JobId(7).to_string(), "job-7");
        assert_eq!(JobStatus::Queued.to_string(), "queued");
        assert_eq!(JobStatus::Cancelled.to_string(), "cancelled");
    }

    #[test]
    fn tags_and_raw_ids_round_trip() {
        for s in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Cancelled,
        ] {
            assert_eq!(JobStatus::from_tag(s.tag()), Some(s));
        }
        assert_eq!(JobStatus::from_tag("bogus"), None);
        assert_eq!(JobId::from_raw(9).raw(), 9);
        assert_eq!(JobId::from_raw(9), JobId(9));
    }
}
