//! Job lifecycle integration tests: the ISSUE's acceptance criterion
//! that concurrent submissions across heterogeneous problem types
//! fetch solutions **bit-identical** to serial `Engine::solve` calls
//! with the same seeds, plus cancellation and queue-full behavior.

use std::sync::Arc;

use hycim_cop::binpack::BinPacking;
use hycim_cop::generator::QkpGenerator;
use hycim_cop::maxcut::MaxCut;
use hycim_cop::tsp::Tsp;
use hycim_cop::QkpInstance;
use hycim_core::{
    replica_seed, BankEngine, BatchRunner, DquboConfig, DquboEngine, Engine, HyCimConfig,
    HyCimEngine, SoftwareEngine,
};
use hycim_service::{FetchError, JobService, JobStatus, ServiceConfig, SubmitError};

fn qkp_engine(seed: u64) -> Arc<HyCimEngine<QkpInstance>> {
    let inst = QkpGenerator::new(20, 0.5).generate(seed);
    Arc::new(
        HyCimEngine::new(&inst, &HyCimConfig::default().with_sweeps(60), seed)
            .expect("benchmark instances map"),
    )
}

fn maxcut_engine(seed: u64) -> Arc<SoftwareEngine<MaxCut>> {
    let graph = MaxCut::random(16, 0.5, seed);
    Arc::new(
        SoftwareEngine::new(&graph, &HyCimConfig::default().with_sweeps(60))
            .expect("max-cut always encodes"),
    )
}

/// The headline guarantee: many threads hammering one service with
/// three different problem types (and three different engine
/// backends), every fetched solution equal to the serial reference.
#[test]
fn concurrent_heterogeneous_submits_match_serial_solves() {
    let qkp = qkp_engine(1);
    let cut = maxcut_engine(2);
    let tsp_inst = Tsp::random_euclidean(5, 10.0, 3).expect("valid instance");
    let tsp = Arc::new(
        DquboEngine::new(&tsp_inst, &DquboConfig::default().with_sweeps(60)).expect("tsp encodes"),
    );

    let service = JobService::start(ServiceConfig::new().with_workers(4));
    let seeds: Vec<u64> = (0..6).collect();

    // Submit from several caller threads at once.
    let (qkp_jobs, cut_jobs, tsp_jobs) = std::thread::scope(|scope| {
        let submit_qkp = scope.spawn(|| {
            seeds
                .iter()
                .map(|&s| service.submit(&qkp, s).expect("capacity is ample"))
                .collect::<Vec<_>>()
        });
        let submit_cut = scope.spawn(|| {
            seeds
                .iter()
                .map(|&s| service.submit(&cut, s).expect("capacity is ample"))
                .collect::<Vec<_>>()
        });
        let submit_tsp = scope.spawn(|| {
            seeds
                .iter()
                .map(|&s| service.submit(&tsp, s).expect("capacity is ample"))
                .collect::<Vec<_>>()
        });
        (
            submit_qkp.join().expect("submitter"),
            submit_cut.join().expect("submitter"),
            submit_tsp.join().expect("submitter"),
        )
    });

    for (&seed, &job) in seeds.iter().zip(&qkp_jobs) {
        let got = service.wait_fetch::<QkpInstance>(job).expect("qkp job");
        let want = qkp.solve(seed);
        assert_eq!(
            got.solution().assignment,
            want.assignment,
            "qkp seed {seed}"
        );
        assert_eq!(got.solution().objective, want.objective);
        assert_eq!(got.solution().reported_energy, want.reported_energy);
        assert_eq!(got.backend, "hycim");
    }
    for (&seed, &job) in seeds.iter().zip(&cut_jobs) {
        let got = service.wait_fetch::<MaxCut>(job).expect("max-cut job");
        let want = cut.solve(seed);
        assert_eq!(
            got.solution().assignment,
            want.assignment,
            "cut seed {seed}"
        );
        assert_eq!(got.solution().objective, want.objective);
        assert_eq!(got.backend, "software");
    }
    for (&seed, &job) in seeds.iter().zip(&tsp_jobs) {
        let got = service.wait_fetch::<Tsp>(job).expect("tsp job");
        let want = tsp.solve(seed);
        assert_eq!(
            got.solution().assignment,
            want.assignment,
            "tsp seed {seed}"
        );
        assert_eq!(got.solution().decoded, want.decoded);
        assert_eq!(got.backend, "dqubo");
    }
}

/// Batch jobs reuse the `replica_seed` derivation, so one service job
/// equals a whole `BatchRunner` run — at any worker count.
#[test]
fn batch_job_is_bit_identical_to_batch_runner() {
    let engine = qkp_engine(5);
    let service = JobService::start(ServiceConfig::new().with_workers(3));
    let job = service.submit_batch(&engine, 5, 77).expect("capacity");
    let got = service.wait_fetch::<QkpInstance>(job).expect("batch job");
    let want = BatchRunner::new()
        .with_threads(2)
        .run(engine.as_ref(), 5, 77);
    assert_eq!(got.replicas(), want.len());
    for (k, (g, w)) in got.solutions.iter().zip(&want).enumerate() {
        assert_eq!(got.seeds[k], replica_seed(77, 0, k as u64));
        assert_eq!(g.assignment, w.assignment, "replica {k}");
        assert_eq!(g.objective, w.objective);
        assert_eq!(g.reported_energy, w.reported_energy);
    }
}

/// Bank-engine jobs ride the same erased queue: a batch job over the
/// multi-constraint pipeline fetches bit-identical to `BatchRunner`,
/// and every replica's solution satisfies each per-bin constraint.
#[test]
fn bank_engine_jobs_are_bit_identical_and_bin_exact() {
    let bp = BinPacking::new(vec![4, 5, 3, 6], 9, 2).unwrap();
    let engine = Arc::new(
        BankEngine::new(&bp, &HyCimConfig::default().with_sweeps(60), 7)
            .expect("bin packing maps onto the bank"),
    );
    let service = JobService::start(ServiceConfig::new().with_workers(3));
    let job = service.submit_batch(&engine, 4, 31).expect("capacity");
    let got = service.wait_fetch::<BinPacking>(job).expect("bank job");
    assert_eq!(got.backend, "bank");
    let want = BatchRunner::new()
        .with_threads(2)
        .run(engine.as_ref(), 4, 31);
    use hycim_cop::CopProblem;
    let mq = bp.to_multi_inequality_qubo().expect("encodable");
    for (k, (g, w)) in got.solutions.iter().zip(&want).enumerate() {
        assert_eq!(got.seeds[k], replica_seed(31, 0, k as u64));
        assert_eq!(g.assignment, w.assignment, "replica {k}");
        assert_eq!(g.reported_energy, w.reported_energy);
        assert!(
            mq.is_feasible(&g.assignment),
            "replica {k} violates a bin constraint"
        );
    }
}

/// Cancelling a queued job prevents it from ever running; its entry
/// reports `Cancelled` until fetched, and fetching yields the typed
/// cancellation error.
#[test]
fn cancellation_of_queued_jobs() {
    let engine = qkp_engine(9);
    // One worker + a long head-of-line job keeps later jobs queued.
    let service = JobService::start(ServiceConfig::new().with_workers(1).with_queue_capacity(16));
    let head = service.submit_batch(&engine, 8, 1).expect("capacity");
    let victims: Vec<_> = (0..4)
        .map(|s| service.submit(&engine, s).expect("capacity"))
        .collect();

    let mut cancelled = Vec::new();
    for &job in &victims {
        if service.cancel(job) {
            assert_eq!(service.status(job), Some(JobStatus::Cancelled));
            cancelled.push(job);
        }
    }
    // Double-cancel is a no-op, not an error.
    for &job in &cancelled {
        assert!(!service.cancel(job));
    }
    for &job in &cancelled {
        match service.wait_fetch::<QkpInstance>(job) {
            Err(FetchError::Cancelled(id)) => assert_eq!(id, job),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // Fetch consumed the entry.
        assert_eq!(service.status(job), None);
    }
    // Untouched jobs still complete correctly.
    assert!(service.wait_fetch::<QkpInstance>(head).is_ok());
    for job in victims {
        if !cancelled.contains(&job) {
            assert!(service.wait_fetch::<QkpInstance>(job).is_ok());
        }
    }
}

/// The queue bound is enforced per waiting job: submits beyond it
/// fail fast with `QueueFull`, and capacity frees up as the queue
/// drains.
#[test]
fn queue_full_backpressure() {
    let engine = qkp_engine(11);
    let service = JobService::start(ServiceConfig::new().with_workers(1).with_queue_capacity(3));
    // Occupy the worker so subsequent submits stay queued.
    let head = service.submit_batch(&engine, 6, 2).expect("first submit");

    let mut queued_jobs = Vec::new();
    let mut rejections = 0usize;
    // 3 capacity + the head job possibly still queued: submit until
    // the bound trips, which must happen within a handful of tries.
    for seed in 0..16 {
        match service.submit(&engine, seed) {
            Ok(job) => queued_jobs.push(job),
            Err(SubmitError::QueueFull { capacity }) => {
                assert_eq!(capacity, 3);
                assert_eq!(service.queue_capacity(), 3);
                rejections += 1;
                break;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        assert!(queued_jobs.len() <= 4, "bound never tripped");
    }
    assert_eq!(rejections, 1, "submit loop must hit the bound");

    // Draining the queue restores capacity.
    service.wait(head);
    for &job in &queued_jobs {
        service.wait(job);
    }
    assert_eq!(service.queued(), 0);
    let retry = service.submit(&engine, 99).expect("drained queue accepts");
    assert!(service.wait_fetch::<QkpInstance>(retry).is_ok());
}

/// Status transitions observed through the public API follow the
/// documented lifecycle: Queued/Running → Done, and ids are unique.
#[test]
fn status_lifecycle_and_unique_ids() {
    let engine = maxcut_engine(13);
    let service = JobService::start(ServiceConfig::new().with_workers(2));
    let jobs: Vec<_> = (0..8)
        .map(|s| service.submit(&engine, s).expect("capacity"))
        .collect();
    let unique: std::collections::BTreeSet<_> = jobs.iter().copied().collect();
    assert_eq!(unique.len(), jobs.len(), "ids must be unique");

    for &job in &jobs {
        // Any status observed before the terminal wait must be a
        // legal non-fetched state.
        if let Some(status) = service.status(job) {
            assert!(matches!(
                status,
                JobStatus::Queued | JobStatus::Running | JobStatus::Done
            ));
        }
        assert_eq!(service.wait(job), Some(JobStatus::Done));
    }
    for job in jobs {
        assert!(service.wait_fetch::<MaxCut>(job).is_ok());
    }
}
