//! End-to-end tests of the study harness: thread-count bit-identity
//! of the emitted artifact, sub-recipe cell reproducibility (the
//! property the regression gate is built on), and the gate's
//! committed-vs-fresh diff on real runs.

use hycim_bench::gate::{diff_study_cells, GateTolerances};
use hycim_bench::{
    parse_study_cells, render_study_json, validate_study_json, ReportMeta, StudyRecipe, StudyRunner,
};

/// The acceptance criterion: the rendered study document is
/// bit-identical across `--threads 1` and `--threads 4`.
#[test]
fn study_json_is_bit_identical_across_thread_counts() {
    let recipe = StudyRecipe::preset("micro").expect("micro preset");
    let meta = ReportMeta::unknown();
    let serial = StudyRunner::new().with_threads(1).run(&recipe).unwrap();
    let doc1 = render_study_json(&serial, &meta);
    validate_study_json(&doc1).expect("serial document validates");
    let parallel = StudyRunner::new().with_threads(4).run(&recipe).unwrap();
    let doc4 = render_study_json(&parallel, &meta);
    assert_eq!(doc1, doc4, "thread count leaked into the artifact");
    // The deterministic summaries agree too (telemetry may differ).
    assert_eq!(serial.problems, parallel.problems);
    assert_eq!(serial.rankings, parallel.rankings);
}

/// Instance-keyed seeding: a sub-recipe reproduces the superset
/// recipe's cells exactly — the invariant that lets the tiny gate
/// recipe diff against the committed full-study artifact.
#[test]
fn sub_recipe_cells_match_superset_cells_bitwise() {
    let small = StudyRecipe::parse(
        "study small\nseed 11\nreplicas 2\nsweeps 40\nengines software,hycim\n\
         problem qkp sizes=8 density=50\n",
    )
    .unwrap();
    let big = StudyRecipe::parse(
        "study big\nseed 11\nreplicas 2\nsweeps 40\nengines software,hycim\n\
         problem qkp sizes=8,12 density=50\nproblem maxcut sizes=6 density=50\n",
    )
    .unwrap();
    let small_run = StudyRunner::new().with_threads(2).run(&small).unwrap();
    let big_run = StudyRunner::new().with_threads(3).run(&big).unwrap();
    let small_p = &small_run.problems[0];
    let big_p = big_run
        .problems
        .iter()
        .find(|p| p.problem == small_p.problem)
        .expect("shared instance present in superset");
    assert_eq!(small_p, big_p, "sub-recipe cell diverged from superset");
}

/// The gate's end-to-end flow on a real run: committed == fresh
/// passes; a doctored committed document fails.
#[test]
fn gate_diff_passes_on_own_output_and_fails_on_doctored() {
    let recipe = StudyRecipe::preset("micro").unwrap();
    let result = StudyRunner::new().with_threads(2).run(&recipe).unwrap();
    let committed = render_study_json(&result, &ReportMeta::unknown());
    validate_study_json(&committed).unwrap();
    let tol = GateTolerances::default();

    let cells = parse_study_cells(&committed).unwrap();
    let report = diff_study_cells(&cells, &result.fresh_cells(), &tol);
    assert!(report.passed(), "self-diff failed: {:?}", report.failures);
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);

    // Doctor the committed best objective of the first cell to a
    // value no honest run can reach: the fresh run now looks like a
    // quality regression and the gate must fail.
    let marker = "\"best_objective\": ";
    let start = committed.find(marker).expect("cells carry objectives") + marker.len();
    let end = start + committed[start..].find(',').expect("more fields follow");
    let doctored = format!("{}-999999.0000{}", &committed[..start], &committed[end..]);
    validate_study_json(&doctored).expect("doctored document still well-formed");
    let doctored_cells = parse_study_cells(&doctored).unwrap();
    let report = diff_study_cells(&doctored_cells, &result.fresh_cells(), &tol);
    assert!(!report.passed(), "doctored committed file must fail");
    assert!(
        report.failures[0].contains("worsened"),
        "{:?}",
        report.failures
    );
}

/// The gate preset must stay a strict subset of the default preset —
/// same knobs, instance keys drawn from the default's set — or the
/// committed BENCH_study.json stops covering the gate's cells.
#[test]
fn gate_preset_cells_are_covered_by_default_preset() {
    let gate = StudyRecipe::preset("gate").unwrap();
    let default = StudyRecipe::preset("default").unwrap();
    assert_eq!(
        (gate.seed, gate.replicas, gate.sweeps, &gate.engines),
        (
            default.seed,
            default.replicas,
            default.sweeps,
            &default.engines
        )
    );
    let default_keys: Vec<String> = default
        .instances()
        .into_iter()
        .map(|(_, _, key)| key)
        .collect();
    for (_, _, key) in gate.instances() {
        assert!(default_keys.contains(&key), "{key} not in default preset");
    }
}
