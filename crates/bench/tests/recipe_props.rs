//! Property tests of the recipe format: the round-trip law
//! `parse(format(r)) == r` over generated recipes, plus stability of
//! instance-keyed seed derivation.

use hycim_bench::{EngineKind, Family, FamilySpec, StudyRecipe};
use proptest::prelude::*;

fn arb_family() -> impl Strategy<Value = Family> {
    (0usize..8, 1u32..=100, 2u32..=16, 1u32..=16, 1u32..=8).prop_map(
        |(selector, density, colors, bins, dims)| match selector {
            0 => Family::Qkp {
                density_pct: density,
            },
            1 => Family::Knapsack,
            2 => Family::MaxCut {
                density_pct: density,
            },
            3 => Family::SpinGlass,
            4 => Family::Tsp,
            5 => Family::Coloring { colors },
            6 => Family::BinPack { bins },
            _ => Family::Mkp { dims },
        },
    )
}

fn arb_spec() -> impl Strategy<Value = FamilySpec> {
    (arb_family(), proptest::collection::vec(3usize..64, 1..4))
        .prop_map(|(family, sizes)| FamilySpec { family, sizes })
}

fn arb_recipe() -> impl Strategy<Value = StudyRecipe> {
    (
        proptest::collection::vec(0usize..36, 1..9),
        0u64..1_000_000,
        1usize..8,
        (1usize..500, 1usize..16),
        proptest::collection::vec(arb_spec(), 1..5),
    )
        .prop_map(
            |(name_chars, seed, replicas, (sweeps, engine_mask), problems)| {
                let name: String = name_chars
                    .into_iter()
                    .map(|c| b"abcdefghijklmnopqrstuvwxyz0123456789"[c] as char)
                    .collect();
                let engines: Vec<EngineKind> = EngineKind::ALL
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| engine_mask & (1 << i) != 0)
                    .map(|(_, k)| k)
                    .collect();
                StudyRecipe {
                    name,
                    seed,
                    replicas,
                    sweeps,
                    engines,
                    problems,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The round-trip law: formatting then parsing restores the exact
    /// recipe, and formatting is idempotent.
    #[test]
    fn format_then_parse_round_trips(recipe in arb_recipe()) {
        let rendered = recipe.to_string();
        let reparsed = StudyRecipe::parse(&rendered)
            .unwrap_or_else(|e| panic!("canonical form must parse: {e}\n{rendered}"));
        prop_assert_eq!(&recipe, &reparsed);
        prop_assert_eq!(rendered, reparsed.to_string());
    }

    /// Seeds derive from (study seed, instance key) alone: formatting
    /// round-trips preserve them, and the three seed roles never
    /// collide on any generated instance.
    #[test]
    fn seed_derivation_is_stable_and_role_separated(recipe in arb_recipe()) {
        let reparsed = StudyRecipe::parse(&recipe.to_string()).expect("round-trips");
        for (_, _, key) in recipe.instances() {
            prop_assert_eq!(recipe.instance_seed(&key), reparsed.instance_seed(&key));
            prop_assert_eq!(recipe.solve_seed(&key), reparsed.solve_seed(&key));
            prop_assert_eq!(recipe.hardware_seed(&key), reparsed.hardware_seed(&key));
            prop_assert_ne!(recipe.instance_seed(&key), recipe.solve_seed(&key));
            prop_assert_ne!(recipe.solve_seed(&key), recipe.hardware_seed(&key));
        }
    }

    /// Appending junk after a rendered recipe is always rejected, and
    /// the error names the first offending line.
    #[test]
    fn trailing_garbage_is_rejected_with_its_line(recipe in arb_recipe()) {
        let rendered = recipe.to_string();
        let lines = rendered.lines().count();
        let e = StudyRecipe::parse(&format!("{rendered}garbage here\n"))
            .expect_err("junk directive must be rejected");
        prop_assert_eq!(e.line, lines + 1);
        prop_assert!(e.msg.contains("unknown directive"));
    }
}
