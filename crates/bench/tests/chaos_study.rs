//! The resilience pin on the study artifact itself: a distributed
//! study run through fault-injection proxies — a worker that keeps
//! dying mid-run, a flaky worker that recovers, seeded backoff active
//! — must render the exact `BENCH_study.json` bytes of a local
//! single-thread [`StudyRunner`] run. And when every worker is gone,
//! the coordinator's local fallback must still produce those bytes.

use std::time::Duration;

use hycim_bench::{
    render_study_json, DistributedStudyRunner, ReportMeta, StudyRecipe, StudyRunner,
};
use hycim_net::{
    ChaosProxy, ConnFault, Coordinator, FaultPlan, WorkerConfig, WorkerFault, WorkerHandle,
    WorkerServer,
};

fn spawn_worker(config: WorkerConfig) -> WorkerHandle {
    WorkerServer::bind("127.0.0.1:0", config)
        .expect("bind loopback")
        .spawn()
}

fn local_doc(recipe: &StudyRecipe, meta: &ReportMeta) -> String {
    let local = StudyRunner::new()
        .with_threads(1)
        .run(recipe)
        .expect("local run completes");
    render_study_json(&local, meta)
}

#[test]
fn gate_study_through_chaos_is_byte_identical_to_local() {
    // Worker 0 sits behind a proxy that severs every conversation
    // after one forwarded response — it keeps "dying mid-run" and
    // keeps being probed back in, only to die again. Worker 1 panics
    // on its first two solves, then recovers for good (the flaky
    // worker readmission exists for). Worker 2 is healthy. Backoff is
    // active (the default); stragglers that exhaust their attempts
    // finish through the local fallback. None of it may move a byte.
    let recipe = StudyRecipe::preset("gate").expect("preset exists");
    let meta = ReportMeta::unknown();

    let doomed = spawn_worker(WorkerConfig::new());
    let proxy = ChaosProxy::spawn(
        doomed.addr().to_string(),
        FaultPlan::clean(11)
            .with_random(100, vec![ConnFault::CloseAfterResponses { responses: 1 }]),
    )
    .expect("spawn proxy");
    let mut flaky_config = WorkerConfig::new();
    flaky_config.fault = Some(WorkerFault::PanicFirstSubmits(2));
    let flaky = spawn_worker(flaky_config);
    let healthy = spawn_worker(WorkerConfig::new());

    let addrs = vec![
        proxy.addr().to_string(),
        flaky.addr().to_string(),
        healthy.addr().to_string(),
    ];
    let coordinator = Coordinator::new(addrs.clone())
        .with_read_timeout(Duration::from_millis(300))
        .with_connect_timeout(Duration::from_secs(5));
    let wire = DistributedStudyRunner::new(addrs)
        .with_shards(3)
        .with_coordinator(coordinator.clone())
        .run(&recipe)
        .expect("chaos study completes");

    assert_eq!(
        render_study_json(&wire, &meta),
        local_doc(&recipe, &meta),
        "chaos moved a byte of the artifact"
    );
    // The run was genuinely chaotic, not accidentally clean.
    assert!(proxy.faults_injected() >= 1, "the proxy never fired");
    let stats = coordinator.obs().snapshot();
    assert!(
        stats.counter("coord.workers_retired").unwrap_or(0) >= 1,
        "{stats:?}"
    );
    assert!(
        stats.counter("coord.workers_readmitted").unwrap_or(0) >= 1,
        "{stats:?}"
    );

    proxy.stop();
    doomed.stop();
    flaky.stop();
    healthy.stop();
}

#[test]
fn all_workers_dead_study_completes_locally_with_the_same_bytes() {
    // One address nobody listens on, one proxy that refuses every
    // conversation: the fleet dies, the probe budgets exhaust, and
    // the whole study degrades to the coordinator host — with the
    // byte-identical artifact.
    let recipe = StudyRecipe::preset("micro").expect("preset exists");
    let meta = ReportMeta::unknown();

    let ghost = spawn_worker(WorkerConfig::new());
    let proxy = ChaosProxy::spawn(
        ghost.addr().to_string(),
        FaultPlan::clean(13).with_random(100, vec![ConnFault::Refuse]),
    )
    .expect("spawn proxy");

    let addrs = vec!["127.0.0.1:1".to_string(), proxy.addr().to_string()];
    let coordinator = Coordinator::new(addrs.clone())
        .with_read_timeout(Duration::from_millis(200))
        .with_connect_timeout(Duration::from_secs(5));
    let wire = DistributedStudyRunner::new(addrs)
        .with_shards(2)
        .with_coordinator(coordinator.clone())
        .run(&recipe)
        .expect("local fallback completes the study");

    assert_eq!(
        render_study_json(&wire, &meta),
        local_doc(&recipe, &meta),
        "the fallback moved a byte of the artifact"
    );
    let stats = coordinator.obs().snapshot();
    assert!(
        stats.counter("coord.shards_local").unwrap_or(0) >= 1,
        "{stats:?}"
    );

    proxy.stop();
    ghost.stop();
}
