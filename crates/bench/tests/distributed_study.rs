//! The distributed-study determinism pins: a sharded run over
//! loopback TCP workers renders the exact `BENCH_study.json` bytes of
//! a local single-thread [`StudyRunner`] run, for the CI presets and
//! for any shard-boundary choice.

use hycim_bench::{
    render_study_json, DistributedStudyRunner, ReportMeta, StudyRecipe, StudyRunner,
};
use hycim_net::{WorkerConfig, WorkerHandle, WorkerServer};

fn spawn_workers(n: usize) -> (Vec<WorkerHandle>, Vec<String>) {
    let handles: Vec<_> = (0..n)
        .map(|_| {
            WorkerServer::bind("127.0.0.1:0", WorkerConfig::new())
                .expect("bind loopback")
                .spawn()
        })
        .collect();
    let addrs = handles.iter().map(|h| h.addr().to_string()).collect();
    (handles, addrs)
}

fn preset(name: &str) -> StudyRecipe {
    StudyRecipe::preset(name).expect("preset exists")
}

/// Renders a recipe's artifact from a distributed run and from a
/// single-thread local run, with identical meta.
fn render_both(recipe: &StudyRecipe, addrs: Vec<String>, shards: usize) -> (String, String) {
    let meta = ReportMeta::unknown();
    let wire = DistributedStudyRunner::new(addrs)
        .with_shards(shards)
        .run(recipe)
        .expect("distributed run completes");
    let local = StudyRunner::new()
        .with_threads(1)
        .run(recipe)
        .expect("local run completes");
    (
        render_study_json(&wire, &meta),
        render_study_json(&local, &meta),
    )
}

#[test]
fn micro_preset_sharded_run_is_byte_identical_to_local() {
    let (handles, addrs) = spawn_workers(2);
    let (wire_doc, local_doc) = render_both(&preset("micro"), addrs, 3);
    assert_eq!(wire_doc, local_doc, "micro artifact diverged");
    for handle in handles {
        handle.stop();
    }
}

#[test]
fn gate_preset_three_worker_run_matches_single_thread_local() {
    // The regression-gate matrix itself — every family and backend the
    // committed BENCH_study.json gates on — sharded over 3 workers.
    let (handles, addrs) = spawn_workers(3);
    let (wire_doc, local_doc) = render_both(&preset("gate"), addrs, 3);
    assert_eq!(wire_doc, local_doc, "gate artifact diverged");
    for handle in handles {
        handle.stop();
    }
}

#[test]
fn shard_boundary_choice_does_not_change_the_artifact() {
    let (handles, addrs) = spawn_workers(2);
    let recipe = preset("micro");
    let meta = ReportMeta::unknown();
    let mut docs = Vec::new();
    for shards in [1usize, 2, 5] {
        let result = DistributedStudyRunner::new(addrs.clone())
            .with_shards(shards)
            .run(&recipe)
            .unwrap_or_else(|e| panic!("{shards} shards: {e}"));
        docs.push(render_study_json(&result, &meta));
    }
    assert_eq!(docs[0], docs[1], "2-shard run diverged from 1-shard");
    assert_eq!(docs[0], docs[2], "5-shard run diverged from 1-shard");
    for handle in handles {
        handle.stop();
    }
}
