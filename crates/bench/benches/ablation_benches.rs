//! Ablation benches for the design choices called out in DESIGN.md §7:
//! crossbar quantization bits, comparator noise, SA schedule shape,
//! D-QUBO aux encoding, and swap-move fraction. These measure solution
//! *quality* proxies as throughput-style benchmarks so regressions in
//! either speed or structure show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hycim_cim::crossbar::CrossbarConfig;
use hycim_cim::filter::{ComparatorConfig, FilterConfig};
use hycim_cop::generator::QkpGenerator;
use hycim_core::{DquboConfig, Engine, HyCimConfig, HyCimSolver};
use hycim_qubo::dqubo::AuxEncoding;
use std::hint::black_box;

/// Quantization-bits ablation: fewer crossbar bits coarsen the stored
/// matrix; this measures the solve cost at each width (quality is
/// reported by `fig10_success --bits`).
fn bench_quantization_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_quantization_bits");
    group.sample_size(10);
    let inst = QkpGenerator::new(100, 0.5).generate(1);
    for bits in [4u32, 7, 10] {
        let config = HyCimConfig::default()
            .with_sweeps(20)
            .with_crossbar(CrossbarConfig::paper().with_bits(bits));
        let solver = HyCimSolver::new(&inst, &config, 1).expect("maps");
        group.bench_function(BenchmarkId::from_parameter(bits), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(solver.solve(seed).value())
            })
        });
    }
    group.finish();
}

/// Comparator-noise ablation: ideal vs paper-calibrated vs pessimistic
/// comparator.
fn bench_comparator_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_comparator");
    group.sample_size(10);
    let inst = QkpGenerator::new(100, 0.5).generate(2);
    let variants = [
        ("ideal", ComparatorConfig::ideal()),
        ("paper", ComparatorConfig::paper()),
        (
            "pessimistic",
            ComparatorConfig {
                offset_sigma: 0.2e-3,
                noise_sigma: 0.1e-3,
            },
        ),
    ];
    for (name, cmp) in variants {
        let config = HyCimConfig::default()
            .with_sweeps(20)
            .with_filter(FilterConfig::paper().with_comparator(cmp));
        let solver = HyCimSolver::new(&inst, &config, 2).expect("maps");
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(solver.solve(seed).value())
            })
        });
    }
    group.finish();
}

/// Swap-move ablation: pure single-flip vs the exchange-heavy default.
fn bench_swap_fraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_swap_fraction");
    group.sample_size(10);
    let inst = QkpGenerator::new(100, 0.5).generate(3);
    for swap in [0.0f64, 0.25, 0.5] {
        let mut config = HyCimConfig::default().with_sweeps(20);
        config.swap_probability = swap;
        let solver = HyCimSolver::new(&inst, &config, 3).expect("maps");
        group.bench_function(BenchmarkId::from_parameter(format!("{swap}")), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(solver.solve(seed).value())
            })
        });
    }
    group.finish();
}

/// D-QUBO encoding ablation: one-hot (paper) vs binary slack —
/// measures the transformation + state-construction cost difference
/// driven by the auxiliary count.
fn bench_dqubo_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dqubo_encoding");
    group.sample_size(10);
    let inst = QkpGenerator::new(50, 0.5)
        .with_capacity_range(100, 400)
        .generate(4);
    for (name, enc) in [
        ("one_hot", AuxEncoding::OneHot),
        ("binary", AuxEncoding::Binary),
    ] {
        let config = DquboConfig::default().with_sweeps(5).with_encoding(enc);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                let solver = hycim_core::DquboSolver::new(&inst, &config).expect("transforms");
                seed += 1;
                black_box(solver.solve(seed).value())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_quantization_bits,
    bench_comparator_noise,
    bench_swap_fraction,
    bench_dqubo_encoding
);
criterion_main!(benches);
