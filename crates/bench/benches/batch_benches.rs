//! Criterion benchmarks of the `BatchRunner`: multi-start throughput
//! at 1, 2, 4 and all-core thread counts on a fixed instance × replica
//! grid. Because the runner is deterministic in the root seed, every
//! thread count computes the *same* solutions — the measured spread is
//! pure parallel speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hycim_cop::generator::QkpGenerator;
use hycim_core::{BatchRunner, HyCimConfig, HyCimSolver};
use std::hint::black_box;

fn bench_batch_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_runner_speedup");
    group.sample_size(10);
    let config = HyCimConfig::default().with_sweeps(30);
    let engines: Vec<HyCimSolver> = (0..4)
        .map(|seed| {
            let inst = QkpGenerator::new(60, 0.5).generate(seed);
            HyCimSolver::new(&inst, &config, seed).expect("maps")
        })
        .collect();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&max_threads) {
        counts.push(max_threads);
    }
    for threads in counts {
        group.bench_function(BenchmarkId::from_parameter(format!("{threads}t")), |b| {
            let runner = BatchRunner::new().with_threads(threads);
            b.iter(|| black_box(runner.run_grid(black_box(&engines), 4, 7)))
        });
    }
    group.finish();
}

fn bench_replica_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_runner_replicas");
    group.sample_size(10);
    let inst = QkpGenerator::new(60, 0.5).generate(9);
    let engine = HyCimSolver::new(&inst, &HyCimConfig::default().with_sweeps(30), 9).expect("maps");
    let runner = BatchRunner::new();
    for replicas in [1usize, 4, 16] {
        group.bench_function(BenchmarkId::from_parameter(replicas), |b| {
            b.iter(|| black_box(runner.run(black_box(&engine), replicas, 3)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_speedup, bench_replica_scaling);
criterion_main!(benches);
