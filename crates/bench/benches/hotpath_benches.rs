//! Criterion micro-benchmarks of the flip-delta hot path: the dense
//! O(n) row scan vs the maintained local-field O(1) lookup, at the
//! probe level and over full SA runs.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hycim_anneal::{Annealer, GeometricSchedule, SoftwareState};
use hycim_cop::maxcut::MaxCut;
use hycim_cop::CopProblem;
use hycim_qubo::{Assignment, LocalFieldState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_flip_delta_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("flip_delta_probe");
    for n in [64usize, 256, 1024] {
        let g = MaxCut::random(n, 0.05, 3);
        let q = g.objective_matrix();
        let mut rng = StdRng::seed_from_u64(4);
        let x = Assignment::random(n, &mut rng);
        let lf = LocalFieldState::new(&q, &x);
        group.bench_function(BenchmarkId::new("dense", n), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % n;
                black_box(q.flip_delta(black_box(&x), i))
            })
        });
        group.bench_function(BenchmarkId::new("local_field", n), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % n;
                black_box(lf.flip_delta(black_box(&x), i))
            })
        });
    }
    group.finish();
}

fn bench_commit_flip(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_field_commit");
    for n in [256usize, 1024] {
        let g = MaxCut::random(n, 0.05, 5);
        let q = g.objective_matrix();
        let mut rng = StdRng::seed_from_u64(6);
        let x = Assignment::random(n, &mut rng);
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter_batched(
                || (LocalFieldState::new(&q, &x), x.clone()),
                |(mut lf, mut x)| {
                    for i in 0..64 {
                        x.flip(i % n);
                        lf.commit_flip(&x, i % n);
                    }
                    black_box(lf.field(0))
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_sa_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa_1000_iterations_backend");
    let n = 256;
    let g = MaxCut::random(n, 0.05, 7);
    let iq = CopProblem::to_inequality_qubo(&g).expect("max-cut encodes");
    let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.999), 1000).without_trace();
    group.bench_function("dense", |b| {
        b.iter_batched(
            || {
                (
                    SoftwareState::new(&iq, Assignment::zeros(n)).with_dense_deltas(),
                    StdRng::seed_from_u64(8),
                )
            },
            |(mut state, mut rng)| black_box(annealer.run(&mut state, &mut rng)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("local_field", |b| {
        b.iter_batched(
            || {
                (
                    SoftwareState::new(&iq, Assignment::zeros(n)),
                    StdRng::seed_from_u64(8),
                )
            },
            |(mut state, mut rng)| black_box(annealer.run(&mut state, &mut rng)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_flip_delta_probe,
    bench_commit_flip,
    bench_sa_backends
);
criterion_main!(benches);
