//! Criterion micro-benchmarks of the simulator's hot paths: filter
//! evaluation, crossbar VMV, SA iteration throughput, and the
//! COP→QUBO transformations.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hycim_anneal::{Annealer, GeometricSchedule, SoftwareState};
use hycim_cim::crossbar::{Crossbar, CrossbarConfig};
use hycim_cim::filter::{FilterConfig, InequalityFilter};
use hycim_cim::Fidelity;
use hycim_cop::generator::QkpGenerator;
use hycim_core::{DquboConfig, DquboSolver, Engine, HyCimConfig, HyCimSolver};
use hycim_qubo::dqubo::{AuxEncoding, DquboForm, PenaltyWeights};
use hycim_qubo::Assignment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_filter_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_eval");
    let inst = QkpGenerator::new(100, 0.5).generate(1);
    let mut rng = StdRng::seed_from_u64(2);
    for fidelity in [Fidelity::Fast, Fidelity::DeviceAccurate] {
        let config = FilterConfig::default().with_fidelity(fidelity);
        let filter = InequalityFilter::build(inst.weights(), inst.capacity(), &config, &mut rng)
            .expect("benchmark instance maps");
        let x = Assignment::random_with_density(100, 0.4, &mut rng);
        group.bench_function(BenchmarkId::from_parameter(format!("{fidelity}")), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(filter.classify(black_box(&x), &mut rng)))
        });
    }
    group.finish();
}

fn bench_crossbar_vmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_vmv");
    let inst = QkpGenerator::new(100, 0.5).generate(4);
    let q = inst.objective_matrix();
    let mut rng = StdRng::seed_from_u64(5);
    for fidelity in [Fidelity::Fast, Fidelity::DeviceAccurate] {
        let config = CrossbarConfig::paper().with_fidelity(fidelity);
        let xbar = Crossbar::program(&q, &config, &mut rng).expect("programmable");
        let x = Assignment::random_with_density(100, 0.4, &mut rng);
        group.bench_function(BenchmarkId::from_parameter(format!("{fidelity}")), |b| {
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| black_box(xbar.compute_energy(black_box(&x), &mut rng)))
        });
    }
    group.finish();
}

fn bench_sa_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa_1000_iterations");
    for n in [50usize, 100, 200] {
        let inst = QkpGenerator::new(n, 0.5).generate(7);
        let iq = inst.to_inequality_qubo().expect("valid");
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter_batched(
                || {
                    (
                        SoftwareState::new(&iq, Assignment::zeros(n)),
                        StdRng::seed_from_u64(8),
                    )
                },
                |(mut state, mut rng)| {
                    let annealer =
                        Annealer::new(GeometricSchedule::new(50.0, 0.999), 1000).without_trace();
                    black_box(annealer.run(&mut state, &mut rng))
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_transformations(c: &mut Criterion) {
    let mut group = c.benchmark_group("transformation");
    let inst = QkpGenerator::new(100, 0.5).generate(9);
    group.bench_function("inequality_qubo", |b| {
        b.iter(|| black_box(inst.to_inequality_qubo().expect("valid")))
    });
    group.bench_function("dqubo_one_hot", |b| {
        b.iter(|| {
            black_box(
                DquboForm::transform(
                    &inst.objective_matrix(),
                    &inst.constraint(),
                    PenaltyWeights::PAPER,
                    AuxEncoding::OneHot,
                )
                .expect("valid"),
            )
        })
    });
    group.bench_function("dqubo_binary", |b| {
        b.iter(|| {
            black_box(
                DquboForm::transform(
                    &inst.objective_matrix(),
                    &inst.constraint(),
                    PenaltyWeights::PAPER,
                    AuxEncoding::Binary,
                )
                .expect("valid"),
            )
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_solve");
    group.sample_size(10);
    let inst = QkpGenerator::new(100, 0.25).generate(10);
    let hycim = HyCimSolver::new(&inst, &HyCimConfig::default().with_sweeps(50), 1).expect("maps");
    group.bench_function("hycim_50_sweeps", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(hycim.solve(seed))
        })
    });
    let dqubo =
        DquboSolver::new(&inst, &DquboConfig::default().with_sweeps(10)).expect("transforms");
    group.bench_function("dqubo_10_sweeps", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(dqubo.solve(seed))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_filter_eval,
    bench_crossbar_vmv,
    bench_sa_iterations,
    bench_transformations,
    bench_end_to_end
);
criterion_main!(benches);
