//! Criterion micro-benchmarks of the bit-parallel replica hot path:
//! one packed 64-lane sweep vs 64 scalar sweep-reference replicas,
//! the masked bitplane commit, and parallel tempering exchange rounds.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hycim_anneal::{
    run_packed_sweeps, run_packed_tempering, run_replica_scalar, PackedTemperingConfig,
    SweepSchedule,
};
use hycim_cop::maxcut::MaxCut;
use hycim_cop::CopProblem;
use hycim_qubo::{Assignment, InequalityQubo, PackedReplicaState, LANES};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn problem(n: usize) -> InequalityQubo {
    let g = MaxCut::random(n, 0.05, 3);
    CopProblem::to_inequality_qubo(&g).expect("max-cut encodes")
}

fn lane_rngs(seed: u64) -> Vec<StdRng> {
    (0..LANES)
        .map(|k| StdRng::seed_from_u64(seed.wrapping_add(k as u64)))
        .collect()
}

fn lane_initials(iq: &InequalityQubo, seed: u64) -> Vec<Assignment> {
    lane_rngs(seed)
        .iter_mut()
        .map(|rng| CopProblem::initial(iq, rng))
        .collect()
}

/// 64 replicas × `sweeps` sweeps: packed bitplanes vs 64 independent
/// scalar local-field replicas (both advance `64 × n × sweeps`
/// replica-iterations per measurement).
fn bench_packed_vs_scalar_sweeps(c: &mut Criterion) {
    let sweeps = 10;
    let mut group = c.benchmark_group("replica_sweeps_64");
    for n in [64usize, 256] {
        let iq = problem(n);
        let initials = lane_initials(&iq, 11);
        let schedule = SweepSchedule::cooling_to(25.0, 0.05, sweeps);
        group.bench_function(BenchmarkId::new("packed", n), |b| {
            b.iter_batched(
                || lane_rngs(12),
                |mut rngs| {
                    black_box(run_packed_sweeps(
                        &iq, &initials, sweeps, &schedule, &mut rngs,
                    ))
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(BenchmarkId::new("scalar_x64", n), |b| {
            b.iter_batched(
                || lane_rngs(12),
                |mut rngs| {
                    for (k, rng) in rngs.iter_mut().enumerate() {
                        black_box(run_replica_scalar(
                            &iq,
                            initials[k].clone(),
                            sweeps,
                            &schedule,
                            rng,
                        ));
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// The masked commit alone: one bitplane XOR + per-set-lane neighbor
/// field updates, at different accepted-lane counts.
fn bench_masked_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("packed_masked_commit");
    let n = 256;
    let iq = problem(n);
    let initials = lane_initials(&iq, 21);
    for (label, mask) in [
        ("1_lane", 1u64),
        ("8_lanes", 0xFFu64),
        ("64_lanes", u64::MAX),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_batched(
                || PackedReplicaState::new(iq.objective(), &initials),
                |mut state| {
                    for i in 0..32 {
                        state.commit_masked(i, mask);
                    }
                    black_box(state.field(0, 0))
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Parallel tempering over the packed lanes: ladder sweeps plus the
/// deterministic even/odd exchange rounds.
fn bench_packed_tempering(c: &mut Criterion) {
    let n = 128;
    let iq = problem(n);
    let initials = lane_initials(&iq, 31);
    let config = PackedTemperingConfig {
        t_min: 0.5,
        t_max: 50.0,
        sweeps_per_exchange: 2,
        rounds: 5,
    };
    c.bench_function("packed_tempering_5_rounds", |b| {
        b.iter_batched(
            || (lane_rngs(32), StdRng::seed_from_u64(33)),
            |(mut rngs, mut swap_rng)| {
                black_box(run_packed_tempering(
                    &iq,
                    &initials,
                    &config,
                    &mut rngs,
                    &mut swap_rng,
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_packed_vs_scalar_sweeps,
    bench_masked_commit,
    bench_packed_tempering
);
criterion_main!(benches);
