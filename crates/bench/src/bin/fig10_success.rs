//! Regenerates paper Fig. 10: normalized QKP values and success rates
//! of HyCiM vs the D-QUBO baseline over the benchmark set, with the
//! instance × initial-state grid fanned out by the deterministic
//! parallel `BatchRunner` (results are bit-identical for any
//! `--threads` value).
//!
//! Paper protocol: 40 instances × 1000 Monte-Carlo initial states ×
//! 100 SA runs × 1000 iterations. That is a cluster-scale run; the
//! defaults here are a shape-preserving reduction (40 instances ×
//! 5 initials × 1 run, D-QUBO at 300 sweeps) — scale up with:
//!
//! ```text
//! cargo run --release -p hycim-bench --bin fig10_success -- \
//!     --per-density 10 --initials 20 --sweeps 1000 --dqubo-sweeps 1000
//! ```
//!
//! Paper result: HyCiM 98.54% average success rate, D-QUBO 10.75%.

use std::time::Instant;

use hycim_bench::{default_threads, mean, Args};
use hycim_cop::generator::benchmark_set;
use hycim_core::success::{run_grid_report, SuccessReport};
use hycim_core::{BatchRunner, DquboConfig, DquboSolver, HyCimConfig, HyCimSolver};

fn main() {
    let args = Args::parse();
    let per_density = args.get_usize("per-density", 10);
    let initials = args.get_usize("initials", 5);
    let sweeps = args.get_usize("sweeps", 1000);
    let dqubo_sweeps = args.get_usize("dqubo-sweeps", 300);
    let skip_dqubo = args.has_flag("skip-dqubo");
    let threads = args.get_usize("threads", default_threads());
    let seed = args.get_u64("seed", 1);

    let instances = benchmark_set(100, per_density);
    let runner = BatchRunner::new().with_threads(threads);
    println!(
        "Fig 10 protocol: {} instances x {initials} initials, HyCiM {sweeps} sweeps, \
         D-QUBO {dqubo_sweeps} sweeps, {threads} threads",
        instances.len()
    );

    // ---- HyCiM ------------------------------------------------------
    let t = Instant::now();
    let hycim_cfg = HyCimConfig::default().with_sweeps(sweeps);
    let hycim_engines: Vec<HyCimSolver> = instances
        .iter()
        .enumerate()
        .map(|(idx, inst)| {
            HyCimSolver::new(inst, &hycim_cfg, seed + idx as u64)
                .expect("benchmark instances map onto the hardware")
        })
        .collect();
    let hycim = run_grid_report(&hycim_engines, initials, seed, &runner);
    println!("\n== HyCiM ({:.1}s) ==", t.elapsed().as_secs_f64());
    print_report(&hycim);

    if skip_dqubo {
        println!("\n(D-QUBO skipped via --skip-dqubo)");
        return;
    }

    // ---- D-QUBO baseline ---------------------------------------------
    let t = Instant::now();
    let dqubo_cfg = DquboConfig::default().with_sweeps(dqubo_sweeps);
    let dqubo_engines: Vec<DquboSolver> = instances
        .iter()
        .map(|inst| DquboSolver::new(inst, &dqubo_cfg).expect("transformable"))
        .collect();
    let dqubo = run_grid_report(&dqubo_engines, initials, seed, &runner);
    println!(
        "\n== D-QUBO baseline ({:.1}s) ==",
        t.elapsed().as_secs_f64()
    );
    print_report(&dqubo);

    println!("\n== headline comparison ==");
    println!(
        "HyCiM  average success rate: {:>6.2}%   (paper: 98.54%)",
        hycim.average_success_rate()
    );
    println!(
        "D-QUBO average success rate: {:>6.2}%   (paper: 10.75%)",
        dqubo.average_success_rate()
    );
    println!(
        "D-QUBO runs ending infeasible: {:.1}% (the paper's \"trapped in \
         infeasible input configuration\")",
        dqubo.infeasible_rate()
    );
}

fn print_report(report: &SuccessReport) {
    let values = report.all_normalized_values();
    println!(
        "normalized QKP values: mean {:.3}, min {:.3}",
        mean(&values),
        values.iter().fold(f64::INFINITY, |a, &b| a.min(b))
    );
    // Histogram of normalized values (the Fig. 10 scatter condensed).
    let mut bins = [0usize; 11];
    for &v in &values {
        let b = (v.clamp(0.0, 1.0) * 10.0).floor() as usize;
        bins[b.min(10)] += 1;
    }
    for (i, &count) in bins.iter().enumerate() {
        if count > 0 {
            println!(
                "  [{:.1}-{:.1}) {:>5} {}",
                i as f64 / 10.0,
                (i + 1) as f64 / 10.0,
                count,
                hycim_bench::bar(count as f64, values.len() as f64, 40)
            );
        }
    }
    println!(
        "average success rate: {:.2}%",
        report.average_success_rate()
    );
}
