//! Regenerates paper Fig. 8: the inequality filter classifying 800
//! Monte-Carlo input configurations (10 feasible + 10 infeasible per
//! instance × 40 QKP instances) with 16×100 working/replica arrays.
//!
//! Prints the normalized ML statistics and the classification
//! accuracy; the paper's claim is a clean separation with feasible
//! points at normalized ML ≥ 1 and infeasible below.
//!
//! ```text
//! cargo run --release -p hycim-bench --bin fig8_filter_validation
//! ```

use hycim_bench::{mean, min_max, Args};
use hycim_cim::filter::{FilterConfig, InequalityFilter};
use hycim_cim::Fidelity;
use hycim_cop::generator::benchmark_set;
use hycim_qubo::Assignment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse();
    let per_density = args.get_usize("per-density", 10); // 40 instances total
    let per_class = args.get_usize("per-class", 10); // 10 feasible + 10 infeasible
    let seed = args.get_u64("seed", 7);

    let instances = benchmark_set(100, per_density);
    let config = FilterConfig::default().with_fidelity(Fidelity::DeviceAccurate);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut feasible_norm: Vec<f64> = Vec::new();
    let mut infeasible_norm: Vec<f64> = Vec::new();
    let mut misclassified = 0usize;
    let mut total = 0usize;

    for inst in &instances {
        let filter = InequalityFilter::build(inst.weights(), inst.capacity(), &config, &mut rng)
            .expect("benchmark weights fit the 16-row array");
        let constraint = inst.constraint();

        // Monte-Carlo sampling until we have the quota of each class
        // (paper Sec 4.1).
        let mut have_feasible = 0;
        let mut have_infeasible = 0;
        while have_feasible < per_class || have_infeasible < per_class {
            let density = rng.random_range(0.05..0.95);
            let x = Assignment::random_with_density(100, density, &mut rng);
            let truly_feasible = constraint.is_satisfied(&x);
            if truly_feasible && have_feasible >= per_class {
                continue;
            }
            if !truly_feasible && have_infeasible >= per_class {
                continue;
            }
            let decision = filter.classify(&x, &mut rng);
            let norm = decision.normalized_ml();
            if truly_feasible {
                have_feasible += 1;
                feasible_norm.push(norm);
            } else {
                have_infeasible += 1;
                infeasible_norm.push(norm);
            }
            if decision.is_feasible() != truly_feasible {
                misclassified += 1;
            }
            total += 1;
        }
    }

    let (f_lo, f_hi) = min_max(&feasible_norm);
    let (i_lo, i_hi) = min_max(&infeasible_norm);
    println!("== Fig 8: normalized ML outputs over {total} configurations ==");
    println!(
        "feasible   (n={:>4}): normalized ML in [{:.4}, {:.4}], mean {:.4}",
        feasible_norm.len(),
        f_lo,
        f_hi,
        mean(&feasible_norm)
    );
    println!(
        "infeasible (n={:>4}): normalized ML in [{:.4}, {:.4}], mean {:.4}",
        infeasible_norm.len(),
        i_lo,
        i_hi,
        mean(&infeasible_norm)
    );
    println!(
        "separation: min(feasible) - max(infeasible) = {:.6}",
        f_lo - i_hi
    );
    println!(
        "misclassified: {misclassified}/{total} ({:.2}%)   \
         (paper Fig. 8: all 800 correctly separated)",
        100.0 * misclassified as f64 / total as f64
    );

    // Zoomed view near the replica level (Fig. 8(b)).
    let near: Vec<f64> = feasible_norm
        .iter()
        .chain(infeasible_norm.iter())
        .copied()
        .filter(|v| (0.99..=1.01).contains(v))
        .collect();
    println!(
        "\nFig 8(b) zoom: {} points within 0.99..1.01 of the replica level",
        near.len()
    );
}
