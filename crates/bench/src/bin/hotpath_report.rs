//! SA hot-path throughput report: dense O(n) row-scan deltas vs the
//! maintained local-field backend, across problem families and sizes.
//!
//! For every (family, n) cell the report runs the *same* annealing
//! loop twice — once on a state built with
//! [`with_dense_deltas`](hycim_anneal::SoftwareState::with_dense_deltas),
//! once on the default local-field backend — with identical seeds, and
//! measures iterations/second. On integer-valued instances the two
//! trajectories are bit-identical (asserted per cell), so the ratio is
//! a pure hot-path speedup, not an algorithmic change.
//!
//! Emits `BENCH_hotpath.json` (override with `--out`), the repo's
//! perf-trajectory artifact, and validates its shape before exiting.
//!
//! ```text
//! cargo run --release -p hycim-bench --bin hotpath_report -- \
//!     --sizes 64,256,512 --iters-per-var 60
//! ```

use std::time::Instant;

use hycim_anneal::{
    AnnealState, AnnealTrace, Annealer, GeometricSchedule, PenaltyState, SoftwareState,
};
use hycim_bench::{bar, validate_hotpath_json, Args, HOTPATH_SCHEMA};
use hycim_cop::generator::QkpGenerator;
use hycim_cop::maxcut::MaxCut;
use hycim_cop::spinglass::SpinGlass;
use hycim_cop::CopProblem;
use hycim_qubo::dqubo::{AuxEncoding, PenaltyWeights};
use hycim_qubo::{Assignment, InequalityQubo, QuboMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Row {
    family: &'static str,
    state: &'static str,
    n: usize,
    nnz: usize,
    avg_degree: f64,
    iterations: usize,
    dense_ips: f64,
    local_ips: f64,
    bit_identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.local_ips / self.dense_ips
    }
}

fn degree_stats(q: &QuboMatrix) -> (usize, f64) {
    let nnz = q.nonzeros();
    let off_diag = q.iter_nonzero().filter(|&(i, j, _)| i != j).count();
    let avg_degree = 2.0 * off_diag as f64 / q.dim().max(1) as f64;
    (nnz, avg_degree)
}

/// Times `annealer.run` on a fresh state from `make`, returning
/// (iterations/sec, final trace). One untimed warmup run absorbs
/// first-touch effects.
fn time_run<S: AnnealState>(
    annealer: &Annealer<GeometricSchedule>,
    seed: u64,
    make: impl Fn() -> S,
) -> (f64, AnnealTrace) {
    let mut warm = make();
    let mut rng = StdRng::seed_from_u64(seed);
    let _ = annealer.run(&mut warm, &mut rng);

    let mut state = make();
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let trace = annealer.run(&mut state, &mut rng);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (annealer.iterations() as f64 / elapsed, trace)
}

fn software_row(family: &'static str, iq: &InequalityQubo, iters_per_var: usize, seed: u64) -> Row {
    let n = iq.dim();
    let iterations = (iters_per_var * n).max(1);
    let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.999), iterations).without_trace();
    let (dense_ips, dense_trace) = time_run(&annealer, seed, || {
        SoftwareState::new(iq, Assignment::zeros(n)).with_dense_deltas()
    });
    let (local_ips, local_trace) = time_run(&annealer, seed, || {
        SoftwareState::new(iq, Assignment::zeros(n))
    });
    let (nnz, avg_degree) = degree_stats(iq.objective());
    Row {
        family,
        state: "software",
        n,
        nnz,
        avg_degree,
        iterations,
        dense_ips,
        local_ips,
        bit_identical: dense_trace == local_trace,
    }
}

fn penalty_row(n_items: usize, iters_per_var: usize, seed: u64) -> Row {
    let inst = QkpGenerator::new(n_items, 0.25).generate(seed);
    let form = inst
        .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::Binary)
        .expect("QKP transforms");
    let n = form.dim();
    let iterations = (iters_per_var * n).max(1);
    let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.999), iterations).without_trace();
    let (dense_ips, dense_trace) = time_run(&annealer, seed, || {
        PenaltyState::new(&form, Assignment::zeros(n)).with_dense_deltas()
    });
    let (local_ips, local_trace) = time_run(&annealer, seed, || {
        PenaltyState::new(&form, Assignment::zeros(n))
    });
    let (nnz, avg_degree) = degree_stats(form.matrix());
    Row {
        family: "qkp-dqubo",
        state: "penalty",
        n,
        nnz,
        avg_degree,
        iterations,
        dense_ips,
        local_ips,
        bit_identical: dense_trace == local_trace,
    }
}

fn emit_json(rows: &[Row], iters_per_var: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{HOTPATH_SCHEMA}\",\n"));
    out.push_str("  \"bin\": \"hotpath_report\",\n");
    out.push_str("  \"units\": \"iterations_per_second\",\n");
    out.push_str(&format!("  \"iters_per_var\": {iters_per_var},\n"));
    out.push_str("  \"rows\": [\n");
    for (k, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"family\": \"{}\", \"state\": \"{}\", \"n\": {}, \"nnz\": {}, \
             \"avg_degree\": {:.2}, \"iterations\": {}, \"dense_iters_per_sec\": {:.1}, \
             \"local_iters_per_sec\": {:.1}, \"speedup\": {:.2}, \"bit_identical\": {} }}{}\n",
            r.family,
            r.state,
            r.n,
            r.nnz,
            r.avg_degree,
            r.iterations,
            r.dense_ips,
            r.local_ips,
            r.speedup(),
            r.bit_identical,
            if k + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = Args::parse();
    let sizes = args.get_usize_list("sizes", &[64, 256, 512]);
    let iters_per_var = args.get_usize("iters-per-var", 60);
    let maxcut_density = args.get_f64("maxcut-density", 0.05);
    let qkp_density = args.get_f64("qkp-density", 0.25);
    let seed = args.get_u64("seed", 1);
    let out_path = args.get_str("out", "BENCH_hotpath.json");
    let families = args.get_str("families", "maxcut,spinglass,qkp,qkp-dqubo");

    println!("SA hot-path throughput: dense row scans vs maintained local fields");
    println!("sizes {sizes:?}, {iters_per_var} iterations/variable, families [{families}]\n");
    println!(
        "{:<11} {:>6} {:>9} {:>7} {:>13} {:>13} {:>8}",
        "family", "n", "nnz", "deg", "dense it/s", "local it/s", "speedup"
    );

    let mut rows = Vec::new();
    for &n in &sizes {
        for family in families.split(',').map(str::trim) {
            let row = match family {
                "maxcut" => {
                    let g = MaxCut::random(n, maxcut_density, seed.wrapping_add(n as u64));
                    let iq = CopProblem::to_inequality_qubo(&g).expect("max-cut encodes");
                    software_row("maxcut", &iq, iters_per_var, seed)
                }
                "spinglass" => {
                    let sg = SpinGlass::random_binary(n.max(2), seed.wrapping_add(n as u64))
                        .expect("n >= 2");
                    let iq = CopProblem::to_inequality_qubo(&sg).expect("spin glass encodes");
                    software_row("spinglass", &iq, iters_per_var, seed)
                }
                "qkp" => {
                    let inst = QkpGenerator::new(n, qkp_density).generate(seed);
                    let iq = inst.to_inequality_qubo().expect("QKP encodes");
                    software_row("qkp", &iq, iters_per_var, seed)
                }
                "qkp-dqubo" => penalty_row(n, iters_per_var, seed),
                other => panic!("unknown family {other:?}"),
            };
            println!(
                "{:<11} {:>6} {:>9} {:>7.1} {:>13.0} {:>13.0} {:>7.1}x  {}",
                row.family,
                row.n,
                row.nnz,
                row.avg_degree,
                row.dense_ips,
                row.local_ips,
                row.speedup(),
                bar(row.speedup().min(40.0), 40.0, 24),
            );
            assert!(
                row.bit_identical,
                "{} n={} trajectories diverged between backends",
                row.family, row.n
            );
            rows.push(row);
        }
    }

    let doc = emit_json(&rows, iters_per_var);
    validate_hotpath_json(&doc).expect("emitted report must be well-formed");
    std::fs::write(&out_path, &doc).expect("writable output path");
    println!("\nwrote {out_path} ({} rows, shape validated)", rows.len());

    let best = rows
        .iter()
        .filter(|r| r.n >= 256 && (r.family == "maxcut" || r.family == "spinglass"))
        .map(|r| r.speedup())
        .fold(0.0f64, f64::max);
    if best > 0.0 {
        println!("max sparse-family speedup at n >= 256: {best:.1}x");
    }
}
