//! SA hot-path throughput report: dense O(n) row-scan deltas vs the
//! maintained local-field backend, across problem families and sizes,
//! plus the bit-parallel replica throughput of the packed 64-lane
//! engine vs one production scalar replica.
//!
//! For every (family, n) cell the report runs the *same* annealing
//! loop twice — once on a state built with
//! [`with_dense_deltas`](hycim_anneal::SoftwareState::with_dense_deltas),
//! once on the default local-field backend — with identical seeds, and
//! measures iterations/second. On integer-valued instances the two
//! trajectories are bit-identical (asserted per cell), so the ratio is
//! a pure hot-path speedup, not an algorithmic change.
//!
//! The replica rows do the same for multi-replica annealing: the
//! packed engine advances 64 replicas per pass over the coupling
//! structure (`u64` spin bitplanes, lane-major maintained fields),
//! and every lane is verified bit-identical to an independent scalar
//! sweep-reference replica on its `replica_seed` RNG stream (asserted
//! per cell), so the replica speedup is likewise pure hot path.
//!
//! Emits `BENCH_hotpath.json` (override with `--out`), the repo's
//! perf-trajectory artifact, schema `hycim-hotpath/v3` with a `meta`
//! provenance block (`HYCIM_GIT_DESCRIBE` / `SOURCE_DATE_EPOCH`
//! environment variables, `"unknown"` when unset), and validates its
//! shape before exiting. The measurement and rendering logic lives in
//! [`hycim_bench::hotpath`], shared with the `bench_gate` drift probe.
//!
//! ```text
//! cargo run --release -p hycim-bench --bin hotpath_report -- \
//!     --sizes 64,256,512 --iters-per-var 60 \
//!     --replica-sizes 64,256,512 --replica-sweeps 240
//! ```

use hycim_bench::hotpath::{family_row, render_hotpath_json, replica_family_row};
use hycim_bench::{bar, validate_hotpath_json, Args, ReportMeta};

fn main() {
    let args = Args::parse();
    let sizes = args.get_usize_list("sizes", &[64, 256, 512]);
    let iters_per_var = args.get_usize("iters-per-var", 60);
    let maxcut_density = args.get_f64("maxcut-density", 0.05);
    let qkp_density = args.get_f64("qkp-density", 0.25);
    let seed = args.get_u64("seed", 1);
    let out_path = args.get_str("out", "BENCH_hotpath.json");
    let families = args.get_str("families", "maxcut,spinglass,qkp,qkp-dqubo");
    let replica_sizes = args.get_usize_list("replica-sizes", &[64, 256, 512]);
    let replica_sweeps = args.get_usize("replica-sweeps", 240);
    let replica_families = args.get_str("replica-families", "maxcut,spinglass");

    println!("SA hot-path throughput: dense row scans vs maintained local fields");
    println!("sizes {sizes:?}, {iters_per_var} iterations/variable, families [{families}]\n");
    println!(
        "{:<11} {:>6} {:>9} {:>7} {:>13} {:>13} {:>8}",
        "family", "n", "nnz", "deg", "dense it/s", "local it/s", "speedup"
    );

    let mut rows = Vec::new();
    for &n in &sizes {
        for family in families.split(',').map(str::trim) {
            let row = family_row(family, n, iters_per_var, seed, maxcut_density, qkp_density);
            println!(
                "{:<11} {:>6} {:>9} {:>7.1} {:>13.0} {:>13.0} {:>7.1}x  {}",
                row.family,
                row.n,
                row.nnz,
                row.avg_degree,
                row.dense_ips,
                row.local_ips,
                row.speedup(),
                bar(row.speedup().min(40.0), 40.0, 24),
            );
            assert!(
                row.bit_identical,
                "{} n={} trajectories diverged between backends",
                row.family, row.n
            );
            rows.push(row);
        }
    }

    println!("\nbit-parallel replicas: packed 64-lane engine vs one scalar replica");
    println!(
        "sizes {replica_sizes:?}, {replica_sweeps} sweeps/replica, families [{replica_families}]\n"
    );
    println!(
        "{:<11} {:>6} {:>6} {:>13} {:>13} {:>8}",
        "family", "n", "lanes", "scalar it/s", "packed it/s", "speedup"
    );

    let mut replica_rows = Vec::new();
    for &n in &replica_sizes {
        for family in replica_families.split(',').map(str::trim) {
            let row =
                replica_family_row(family, n, replica_sweeps, seed, maxcut_density, qkp_density);
            println!(
                "{:<11} {:>6} {:>6} {:>13.0} {:>13.0} {:>7.1}x  {}",
                row.family,
                row.n,
                row.lanes,
                row.scalar_ips,
                row.packed_ips,
                row.speedup(),
                bar(row.speedup().min(40.0), 40.0, 24),
            );
            assert!(
                row.bit_identical,
                "{} n={}: packed lanes diverged from their scalar replica_seed twins",
                row.family, row.n
            );
            replica_rows.push(row);
        }
    }

    let doc = render_hotpath_json(&rows, &replica_rows, iters_per_var, &ReportMeta::from_env());
    validate_hotpath_json(&doc).expect("emitted report must be well-formed");
    std::fs::write(&out_path, &doc).expect("writable output path");
    println!(
        "\nwrote {out_path} ({} rows + {} replica rows, shape validated)",
        rows.len(),
        replica_rows.len()
    );

    let best = rows
        .iter()
        .filter(|r| r.n >= 256 && (r.family == "maxcut" || r.family == "spinglass"))
        .map(|r| r.speedup())
        .fold(0.0f64, f64::max);
    if best > 0.0 {
        println!("max sparse-family speedup at n >= 256: {best:.1}x");
    }
    let best_replica = replica_rows
        .iter()
        .filter(|r| r.n >= 256)
        .map(|r| r.speedup())
        .fold(0.0f64, f64::max);
    if best_replica > 0.0 {
        println!("max packed replica speedup at n >= 256: {best_replica:.1}x");
    }
}
