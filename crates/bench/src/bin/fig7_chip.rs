//! Regenerates paper Fig. 7(d) and Fig. 7(f): the fabricated 32×32
//! chip's current linearity and the energy evolution of the worked QKP
//! example over 9 independent "measurements".
//!
//! ```text
//! cargo run --release -p hycim-bench --bin fig7_chip
//! ```

use hycim_bench::{bar, Args};
use hycim_cim::linearity::measure_linearity;
use hycim_cop::QkpInstance;
use hycim_core::{Engine, HyCimConfig, HyCimSolver};
use hycim_fefet::VariationModel;

fn main() {
    let args = Args::parse();
    let measurements = args.get_usize("measurements", 9);
    let seed = args.get_u64("seed", 42);

    // ---- Fig. 7(d): current vs activated cells on a 32×32 chip ------
    println!("== Fig 7(d): 32x32 chip current linearity ({measurements} measurements) ==");
    let sweep = measure_linearity(32, 32, 32, measurements, &VariationModel::paper(), seed);
    println!("{:>6} {:>12} {:>10}", "cells", "mean I (uA)", "std (uA)");
    for (i, &k) in sweep.counts.iter().enumerate() {
        if k % 4 == 0 {
            println!(
                "{:>6} {:>12.2} {:>10.3}  {}",
                k,
                sweep.mean_current[i] * 1e6,
                sweep.std_current[i] * 1e6,
                bar(sweep.mean_current[i] * 1e6, 70.0, 32)
            );
        }
    }
    println!(
        "slope: {:.3} uA/cell, R^2 = {:.6}  (paper: ~2 uA/cell, visually linear)",
        sweep.slope() * 1e6,
        sweep.r_squared()
    );

    // ---- Fig. 7(e,f): the worked QKP example on the chip ------------
    println!("\n== Fig 7(e,f): QKP example energy evolution, {measurements} measurements ==");
    let mut inst = QkpInstance::new(vec![10, 6, 8], vec![4, 7, 2], 9)
        .expect("example instance")
        .with_name("fig7e");
    inst.set_pair_profit(0, 1, 3);
    inst.set_pair_profit(0, 2, 7);
    inst.set_pair_profit(1, 2, 2);
    println!("Q (negated profits) with constraint 4x1+7x2+2x3 <= 9; optimum E = -25");

    let config = HyCimConfig::default().with_sweeps(5).with_trace();
    let mut found = 0;
    for m in 0..measurements {
        // Each measurement erases and reprograms the chip (fresh
        // hardware seed), then runs SA (paper protocol).
        let solver = HyCimSolver::new(&inst, &config, seed + m as u64).expect("mappable example");
        let solution = solver.solve(seed + 100 + m as u64);
        let energies = solution.trace.energies();
        // Subsample the trace to ~15 points like the figure.
        let step = (energies.len() / 15).max(1);
        let series: Vec<String> = energies
            .iter()
            .step_by(step)
            .map(|e| format!("{e:>6.1}"))
            .collect();
        let optimal = solution.value() == 25;
        if optimal {
            found += 1;
        }
        println!(
            "run {m}: E trace {} -> best {:>6.1} {}",
            series.join(" "),
            solution.reported_energy,
            if optimal { "(optimal found)" } else { "" }
        );
    }
    println!(
        "\noptimal solution found in {found}/{measurements} measurements \
         (paper Fig. 7(f): all 9 converge)"
    );
}
