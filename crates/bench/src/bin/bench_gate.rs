//! The BENCH regression gate: re-runs the tiny gate recipe and diffs
//! the fresh cells against the committed `BENCH_study.json` within
//! tolerance bands; quality regressions fail (exit 1), improvements
//! and throughput drift warn. Also validates `BENCH_hotpath.json`
//! (schema v1, v2, or v3) and re-times its smallest probe cells —
//! both the scalar local-field rows and, on v3 artifacts, the packed
//! 64-lane replica rows (warn-only drift; a lane diverging from its
//! scalar `replica_seed` twin fails).
//!
//! ```text
//! cargo run --release -p hycim-bench --bin bench_gate
//! cargo run --release -p hycim-bench --bin bench_gate -- \
//!     --study BENCH_study.json --hotpath BENCH_hotpath.json \
//!     --preset gate --skip-throughput
//! ```
//!
//! The gate recipe is a strict subset of the committed study's
//! default recipe with identical seeds, so every fresh cell compares
//! against its committed counterpart bit-for-bit-comparably: any
//! difference beyond tolerance is a real behavioral change, not
//! sampling noise.

use std::process::ExitCode;
use std::sync::Arc;

use hycim_bench::gate::{
    diff_study_cells, replica_throughput_drift, throughput_drift, GateReport, GateTolerances,
};
use hycim_bench::{
    default_threads, parse_study_cells, render_metrics_summary, validate_hotpath_json,
    validate_study_json, Args, StudyRecipe, StudyRunner,
};
use hycim_obs::ObsRegistry;

fn main() -> ExitCode {
    let args = Args::parse();
    let study_path = args.get_str("study", "BENCH_study.json");
    let hotpath_path = args.get_str("hotpath", "BENCH_hotpath.json");
    let preset = args.get_str("preset", "gate");
    let threads = args.get_usize("threads", default_threads());
    let tol = GateTolerances {
        success_drop: args.get_f64("success-tol", 0.10),
        objective_rel: args.get_f64("objective-tol", 0.05),
        throughput_ratio: args.get_f64("throughput-ratio", 0.40),
    };

    let mut report = GateReport::default();

    // Committed quality artifact: must exist and validate.
    let committed = match std::fs::read_to_string(&study_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("FAIL: cannot read {study_path}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = validate_study_json(&committed) {
        eprintln!("FAIL: {study_path} is malformed: {e}");
        return ExitCode::from(2);
    }
    let committed_cells = match parse_study_cells(&committed) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("FAIL: {study_path}: {e}");
            return ExitCode::from(2);
        }
    };

    // Fresh gate run, diffed cell-by-cell.
    let recipe = StudyRecipe::preset(&preset).unwrap_or_else(|| {
        panic!(
            "unknown preset {preset:?} (available: {:?})",
            StudyRecipe::PRESETS
        )
    });
    println!(
        "gate: running study '{}' ({} instances × {} engines × {} replicas) on {threads} threads",
        recipe.name,
        recipe.instances().len(),
        recipe.engines.len(),
        recipe.replicas
    );
    let obs = Arc::new(ObsRegistry::new());
    let result = StudyRunner::new()
        .with_threads(threads)
        .with_obs(Arc::clone(&obs))
        .run(&recipe)
        .expect("gate recipe cells must construct");
    println!(
        "gate: fresh run finished in {:.2}s solve wall-clock ({} cells)",
        result.wall_seconds,
        result.cells()
    );
    print!("{}", render_metrics_summary(&result, &obs.snapshot()));
    report.merge(diff_study_cells(
        &committed_cells,
        &result.fresh_cells(),
        &tol,
    ));

    // Throughput artifact: validate, then (optionally) probe drift.
    match std::fs::read_to_string(&hotpath_path) {
        Err(e) => report
            .failures
            .push(format!("cannot read {hotpath_path}: {e}")),
        Ok(doc) => {
            if let Err(e) = validate_hotpath_json(&doc) {
                report.failures.push(format!("{hotpath_path}: {e}"));
            } else if !args.has_flag("skip-throughput") {
                report.merge(throughput_drift(&doc, &tol));
                report.merge(replica_throughput_drift(&doc, &tol));
            }
        }
    }

    for w in &report.warnings {
        println!("WARN: {w}");
    }
    for f in &report.failures {
        println!("FAIL: {f}");
    }
    if report.passed() {
        println!(
            "gate: PASS ({} cells within tolerance, {} warnings)",
            result.cells(),
            report.warnings.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("gate: FAIL ({} regressions)", report.failures.len());
        ExitCode::FAILURE
    }
}
