//! Quality ablations for the design choices called out in DESIGN.md §7
//! — reports *success rates* (not throughput; see `ablation_benches`
//! for timing) under each variation, with every (instance × initial)
//! grid fanned out by the deterministic parallel `BatchRunner`:
//!
//! * crossbar quantization bits (4..10 for HyCiM),
//! * comparator noise (ideal / paper / pessimistic),
//! * swap-move fraction (0 / 0.25 / 0.5),
//! * D-QUBO auxiliary encoding (one-hot vs binary slack),
//! * SA schedule (geometric vs linear end-behavior via t_end).
//!
//! ```text
//! cargo run --release -p hycim-bench --bin ablation_report
//! ```

use hycim_bench::{default_threads, Args};
use hycim_cim::crossbar::CrossbarConfig;
use hycim_cim::filter::{ComparatorConfig, FilterConfig};
use hycim_cop::generator::benchmark_set;
use hycim_cop::QkpInstance;
use hycim_core::success::run_grid_report;
use hycim_core::{BatchRunner, DquboConfig, DquboSolver, HyCimConfig, HyCimSolver};
use hycim_qubo::dqubo::AuxEncoding;

fn hycim_rate(
    instances: &[QkpInstance],
    config: &HyCimConfig,
    initials: usize,
    seed: u64,
    runner: &BatchRunner,
) -> f64 {
    let engines: Vec<HyCimSolver> = instances
        .iter()
        .enumerate()
        .map(|(idx, inst)| HyCimSolver::new(inst, config, seed + idx as u64).expect("mappable"))
        .collect();
    run_grid_report(&engines, initials, seed, runner).average_success_rate()
}

fn main() {
    let args = Args::parse();
    let per_density = args.get_usize("per-density", 3); // 12 instances
    let initials = args.get_usize("initials", 3);
    let sweeps = args.get_usize("sweeps", 500);
    let threads = args.get_usize("threads", default_threads());
    let seed = args.get_u64("seed", 1);

    let instances = benchmark_set(100, per_density);
    let runner = BatchRunner::new().with_threads(threads);
    println!(
        "ablation protocol: {} instances x {initials} initials, {sweeps} sweeps\n",
        instances.len()
    );

    // ---- crossbar quantization bits ----------------------------------
    println!("== crossbar quantization bits (paper uses 7) ==");
    for bits in [3u32, 4, 5, 7, 10] {
        let config = HyCimConfig::default()
            .with_sweeps(sweeps)
            .with_crossbar(CrossbarConfig::paper().with_bits(bits));
        println!(
            "  {bits:>2} bits: success {:.1}%",
            hycim_rate(&instances, &config, initials, seed, &runner)
        );
    }

    // ---- comparator noise ---------------------------------------------
    println!("\n== comparator noise ==");
    let variants = [
        ("ideal      ", ComparatorConfig::ideal()),
        ("paper      ", ComparatorConfig::paper()),
        (
            "pessimistic",
            ComparatorConfig {
                offset_sigma: 0.3e-3,
                noise_sigma: 0.15e-3,
            },
        ),
    ];
    for (name, cmp) in variants {
        let config = HyCimConfig::default()
            .with_sweeps(sweeps)
            .with_filter(FilterConfig::paper().with_comparator(cmp));
        println!(
            "  {name}: success {:.1}%",
            hycim_rate(&instances, &config, initials, seed, &runner)
        );
    }

    // ---- swap-move fraction --------------------------------------------
    println!("\n== exchange-move fraction (0 = pure single flips) ==");
    for swap in [0.0, 0.25, 0.5] {
        let mut config = HyCimConfig::default().with_sweeps(sweeps);
        config.swap_probability = swap;
        println!(
            "  swap {swap:>4}: success {:.1}%",
            hycim_rate(&instances, &config, initials, seed, &runner)
        );
    }

    // ---- D-QUBO encoding -------------------------------------------------
    println!("\n== D-QUBO auxiliary encoding (baseline side) ==");
    for (name, enc, dsweeps) in [
        ("one-hot (paper)", AuxEncoding::OneHot, 100),
        ("binary slack   ", AuxEncoding::Binary, 300),
    ] {
        let config = DquboConfig::default()
            .with_sweeps(dsweeps)
            .with_encoding(enc);
        let engines: Vec<DquboSolver> = instances
            .iter()
            .map(|inst| DquboSolver::new(inst, &config).expect("transformable"))
            .collect();
        let report = run_grid_report(&engines, initials, seed, &runner);
        println!(
            "  {name}: success {:.1}%, infeasible finals {:.1}%",
            report.average_success_rate(),
            report.infeasible_rate()
        );
    }

    // ---- schedule end temperature ---------------------------------------
    println!("\n== final temperature fraction (t_end / t0) ==");
    for t_end in [0.05, 0.01, 0.002, 0.0005] {
        let mut config = HyCimConfig::default().with_sweeps(sweeps);
        config.t_end_fraction = t_end;
        println!(
            "  t_end {t_end:>7}: success {:.1}%",
            hycim_rate(&instances, &config, initials, seed, &runner)
        );
    }
}
