//! Throughput report for the `hycim-service` job front-end: a
//! heterogeneous job mix (QKP solves + a max-cut multi-start batch)
//! pushed through `JobService` at increasing worker counts, against a
//! serial direct-`Engine::solve` reference. Every fetched solution is
//! checked bit-identical to its synchronous reference before any
//! number is printed.
//!
//! ```text
//! cargo run --release -p hycim-bench --bin service_throughput -- --jobs 64 --sweeps 500
//! ```

use std::sync::Arc;
use std::time::Instant;

use hycim_bench::{bar, default_threads, Args};
use hycim_cop::generator::QkpGenerator;
use hycim_cop::maxcut::MaxCut;
use hycim_cop::QkpInstance;
use hycim_core::{Engine, HyCimConfig, HyCimEngine};
use hycim_service::{JobService, ServiceConfig};

fn main() {
    let args = Args::parse();
    let jobs = args.get_usize("jobs", 64);
    let items = args.get_usize("items", 30);
    let sweeps = args.get_usize("sweeps", 300);
    let batch_replicas = args.get_usize("batch-replicas", 8);
    let seed = args.get_u64("seed", 1);
    let max_workers = args.get_usize("max-workers", default_threads());

    let config = HyCimConfig::default().with_sweeps(sweeps);
    let qkp = QkpGenerator::new(items, 0.5).generate(seed);
    let graph = MaxCut::random(items, 0.4, seed);
    let qkp_engine =
        Arc::new(HyCimEngine::new(&qkp, &config, seed).expect("benchmark instance maps"));
    let cut_engine =
        Arc::new(HyCimEngine::new(&graph, &config, seed).expect("max-cut always maps"));

    // --- serial reference: the same work as direct synchronous calls.
    let start = Instant::now();
    let qkp_reference: Vec<_> = (0..jobs as u64).map(|s| qkp_engine.solve(s)).collect();
    let cut_reference: Vec<_> = (0..batch_replicas as u64)
        .map(|k| cut_engine.solve(hycim_core::replica_seed(seed, 0, k)))
        .collect();
    let serial = start.elapsed();
    let total_solves = jobs + batch_replicas;

    println!(
        "== service throughput: {jobs} QKP jobs + 1 max-cut batch ({batch_replicas} replicas), \
         {sweeps} sweeps, n={items} =="
    );
    println!(
        "serial reference (direct Engine::solve): {:8.1} ms  ({:.1} solves/s)",
        serial.as_secs_f64() * 1e3,
        total_solves as f64 / serial.as_secs_f64()
    );
    println!();
    println!("workers    wall (ms)   solves/s   speedup");

    let mut workers = 1;
    let mut speedups = Vec::new();
    while workers <= max_workers {
        let service = JobService::start(
            ServiceConfig::new()
                .with_workers(workers)
                .with_queue_capacity(jobs + 1),
        );
        let start = Instant::now();
        let qkp_jobs: Vec<_> = (0..jobs as u64)
            .map(|s| service.submit(&qkp_engine, s).expect("sized queue"))
            .collect();
        let batch = service
            .submit_batch(&cut_engine, batch_replicas, seed)
            .expect("sized queue");
        for (s, &job) in (0u64..).zip(&qkp_jobs) {
            let result = service
                .wait_fetch::<QkpInstance>(job)
                .expect("submitted jobs finish");
            assert_eq!(
                result.solution().assignment,
                qkp_reference[s as usize].assignment,
                "service diverged from direct solve at seed {s}"
            );
        }
        let batch_result = service.wait_fetch::<MaxCut>(batch).expect("batch finishes");
        for (k, reference) in cut_reference.iter().enumerate() {
            assert_eq!(
                batch_result.solutions[k].assignment, reference.assignment,
                "batch replica {k} diverged"
            );
        }
        let wall = start.elapsed();
        service.shutdown();

        let speedup = serial.as_secs_f64() / wall.as_secs_f64();
        speedups.push(speedup);
        println!(
            "{workers:<10} {:8.1}    {:7.1}   {speedup:5.2}x  {}",
            wall.as_secs_f64() * 1e3,
            total_solves as f64 / wall.as_secs_f64(),
            bar(speedup, max_workers as f64, 24)
        );
        workers *= 2;
    }

    println!();
    println!(
        "every fetched solution verified bit-identical to its direct Engine::solve reference \
         ({} solves per row)",
        total_solves
    );
    if let (Some(first), Some(last)) = (speedups.first(), speedups.last()) {
        println!(
            "scaling {first:.2}x -> {last:.2}x across worker counts (ideal: {max_workers}x at \
             {max_workers} workers; per-job solve time and queue overhead set the gap)"
        );
    }
}
