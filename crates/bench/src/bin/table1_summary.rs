//! Regenerates paper Table 1: the QUBO solver summary. Literature
//! rows are cited constants from the paper; the "This work" success
//! rate is **measured** by running the HyCiM pipeline on the benchmark
//! set (a reduced Fig. 10 protocol; tune with the same flags).
//!
//! ```text
//! cargo run --release -p hycim-bench --bin table1_summary
//! ```

use hycim_bench::{default_threads, parallel_map, Args};
use hycim_cop::generator::benchmark_set;
use hycim_core::success::{run_hycim_instance, SuccessReport};
use hycim_core::table::{literature_rows, render_table, this_work_row};
use hycim_core::HyCimConfig;

fn main() {
    let args = Args::parse();
    let per_density = args.get_usize("per-density", 5);
    let initials = args.get_usize("initials", 3);
    let sweeps = args.get_usize("sweeps", 1000);
    let threads = args.get_usize("threads", default_threads());
    let seed = args.get_u64("seed", 1);

    let instances = benchmark_set(100, per_density);
    eprintln!(
        "measuring 'This work' success rate on {} instances x {initials} initials…",
        instances.len()
    );
    let config = HyCimConfig::default().with_sweeps(sweeps);
    let reports = parallel_map(
        instances.iter().enumerate().collect::<Vec<_>>(),
        threads,
        |(idx, inst)| {
            run_hycim_instance(inst, &config, initials, seed + *idx as u64)
                .expect("mappable benchmark instance")
        },
    );
    let report = SuccessReport { instances: reports };

    let mut rows = literature_rows();
    rows.push(this_work_row(report.average_success_rate()));
    println!("== Table 1: summary of QUBO solvers ==");
    println!("{}", render_table(&rows));
    println!(
        "(literature rows cited from the paper; 'This work' measured here — paper value 98.54%)"
    );
}
