//! Regenerates paper Table 1: the QUBO solver summary. Literature
//! rows are cited constants from the paper; the "This work" success
//! rate is **measured** by running the HyCiM pipeline on the benchmark
//! set (a reduced Fig. 10 protocol; tune with the same flags) through
//! the deterministic parallel `BatchRunner`.
//!
//! ```text
//! cargo run --release -p hycim-bench --bin table1_summary
//! ```

use hycim_bench::{default_threads, Args};
use hycim_cop::generator::benchmark_set;
use hycim_core::success::run_grid_report;
use hycim_core::table::{literature_rows, render_table, this_work_row};
use hycim_core::{BatchRunner, HyCimConfig, HyCimSolver};

fn main() {
    let args = Args::parse();
    let per_density = args.get_usize("per-density", 5);
    let initials = args.get_usize("initials", 3);
    let sweeps = args.get_usize("sweeps", 1000);
    let items = args.get_usize("items", 100);
    let threads = args.get_usize("threads", default_threads());
    let seed = args.get_u64("seed", 1);

    let instances = benchmark_set(items, per_density);
    eprintln!(
        "measuring 'This work' success rate on {} instances x {initials} initials \
         ({threads} threads)…",
        instances.len()
    );
    let config = HyCimConfig::default().with_sweeps(sweeps);
    let engines: Vec<HyCimSolver> = instances
        .iter()
        .enumerate()
        .map(|(idx, inst)| {
            HyCimSolver::new(inst, &config, seed + idx as u64).expect("mappable benchmark instance")
        })
        .collect();
    let runner = BatchRunner::new().with_threads(threads);
    let report = run_grid_report(&engines, initials, seed, &runner);

    let mut rows = literature_rows();
    rows.push(this_work_row(report.average_success_rate()));
    println!("== Table 1: summary of QUBO solvers ==");
    println!("{}", render_table(&rows));
    println!(
        "(literature rows cited from the paper; 'This work' measured here — paper value 98.54%)"
    );
}
