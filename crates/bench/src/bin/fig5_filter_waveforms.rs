//! Regenerates paper Fig. 4(c) + Fig. 5(f): filter-cell transients and
//! the worked inequality `4x₁ + 7x₂ + 2x₃ ≤ 9` evaluated over all 2³
//! input configurations.
//!
//! ```text
//! cargo run --release -p hycim-bench --bin fig5_filter_waveforms
//! ```

use hycim_bench::Args;
use hycim_cim::filter::{FilterConfig, InequalityFilter};
use hycim_cim::Fidelity;
use hycim_fefet::{MultiLevelSpec, StaircasePulse};
use hycim_qubo::Assignment;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let seed = args.get_u64("seed", 11);
    let mut rng = StdRng::seed_from_u64(seed);

    // ---- Fig. 4(c): single-cell transients for every stored weight --
    println!("== Fig 4(c): filter-cell ML waveforms per stored weight ==");
    let config = FilterConfig::default().with_fidelity(Fidelity::DeviceAccurate);
    let spec = MultiLevelSpec::paper_filter();
    let stair = StaircasePulse::for_spec(&spec, 10.0);
    println!(
        "staircase phases (V): {}",
        stair
            .iter()
            .map(|(_, v)| format!("{v:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for w in 0..=4u64 {
        let array = hycim_cim::filter::FilterArray::program(&[w], &config, &mut rng)
            .expect("single-cell array");
        let trace = array.waveform(&Assignment::ones_vec(1), &mut rng);
        println!(
            "w={w}: ML {} (total drop {:.2} units)",
            trace
                .iter()
                .map(|v| format!("{v:.4}"))
                .collect::<Vec<_>>()
                .join(" -> "),
            (trace[0] - trace[trace.len() - 1]) / array.matchline_config().unit_drop()
        );
    }

    // ---- Fig. 5(f): the worked 3-item inequality ---------------------
    println!("\n== Fig 5(f): inequality 4x1 + 7x2 + 2x3 <= 9 over all inputs ==");
    let filter = InequalityFilter::build(&[4, 7, 2], 9, &config, &mut rng).expect("example filter");
    let replica_ml = filter
        .replica_array()
        .waveform(&Assignment::ones_vec(3), &mut rng);
    println!(
        "replica ML: {:.4} V (encodes C = 9)",
        replica_ml[replica_ml.len() - 1]
    );
    println!(
        "{:<6} {:>4} {:>10} {:>12}  verdict",
        "x", "load", "ML (V)", "norm. ML"
    );
    let mut correct = 0;
    for bits in 0u32..8 {
        let x = Assignment::from_bits((0..3).map(|i| bits >> i & 1 == 1));
        let load: u64 = [4u64, 7, 2]
            .iter()
            .zip(x.iter())
            .filter(|(_, b)| *b)
            .map(|(w, _)| w)
            .sum();
        let d = filter.classify(&x, &mut rng);
        let ok = d.is_feasible() == (load <= 9);
        if ok {
            correct += 1;
        }
        println!(
            "{:<6} {:>4} {:>10.4} {:>12.6}  {}{}",
            x.to_bit_string(),
            load,
            d.ml(),
            d.normalized_ml(),
            if d.is_feasible() {
                "feasible"
            } else {
                "infeasible"
            },
            if ok { "" } else { "  <-- MISCLASSIFIED" }
        );
    }
    println!("\n{correct}/8 configurations classified correctly (paper: 6 feasible, 2 filtered)");
}
