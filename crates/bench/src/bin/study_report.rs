//! Benchmark-study report: expands a declarative study recipe into the
//! replica × problem × engine grid, ranks the engine backends, and
//! emits the committed `BENCH_study.json` quality artifact.
//!
//! ```text
//! cargo run --release -p hycim-bench --bin study_report -- \
//!     --preset default --threads 4
//! cargo run --release -p hycim-bench --bin study_report -- \
//!     --recipe my_study.recipe --out my_study.json --quiet
//! ```
//!
//! The emitted document is deterministic — bit-identical across
//! `--threads` settings and machines for the same recipe — because
//! every seed derives from the recipe and wall-clock never enters the
//! artifact. Execution metrics flow through an
//! [`ObsRegistry`] and are rendered to stdout
//! as an opt-in summary block; `--quiet` suppresses every print so
//! nothing interleaves with machine-read output. The `meta`
//! provenance block reads `HYCIM_GIT_DESCRIBE` / `SOURCE_DATE_EPOCH`,
//! defaulting to `"unknown"`.

use std::sync::Arc;

use hycim_bench::{
    default_threads, render_metrics_summary, render_study_json, validate_study_json, Args,
    ReportMeta, StudyRecipe, StudyRunner,
};
use hycim_obs::ObsRegistry;

fn main() {
    let args = Args::parse();
    let threads = args.get_usize("threads", default_threads());
    let out_path = args.get_str("out", "BENCH_study.json");
    let recipe_path = args.get_str("recipe", "");
    let preset = args.get_str("preset", "default");
    let quiet = args.has_flag("quiet");

    let recipe = if recipe_path.is_empty() {
        StudyRecipe::preset(&preset).unwrap_or_else(|| {
            panic!(
                "unknown preset {preset:?} (available: {:?})",
                StudyRecipe::PRESETS
            )
        })
    } else {
        let text = std::fs::read_to_string(&recipe_path)
            .unwrap_or_else(|e| panic!("cannot read {recipe_path}: {e}"));
        StudyRecipe::parse(&text).unwrap_or_else(|e| panic!("{recipe_path}: {e}"))
    };

    if !quiet {
        println!("study '{}' on {threads} threads:", recipe.name);
        print!("{recipe}");
        println!();
    }

    let obs = Arc::new(ObsRegistry::new());
    let result = StudyRunner::new()
        .with_threads(threads)
        .with_obs(Arc::clone(&obs))
        .run(&recipe)
        .expect("every recipe cell must construct");

    if !quiet {
        for p in &result.problems {
            println!(
                "{:<16} dim {:>4}  reference {:>12.2}",
                p.problem, p.dim, p.reference
            );
            for c in &p.cells {
                println!(
                    "  {:<9} success {:>6.1}%  feasible {:>6.1}%  best {:>12.2}  \
                     iters-to-best {:>8.0}",
                    c.engine,
                    100.0 * c.success_rate,
                    100.0 * c.feasible_rate,
                    c.best_objective,
                    c.mean_iters_to_best,
                );
            }
        }

        println!("\nengine rankings over {} problems:", result.problems.len());
        println!(
            "{:<6} {:<9} {:>9} {:>7} {:>6} {:>6}",
            "rank", "engine", "success", "borda", "best", "worst"
        );
        for (i, r) in result.rankings.iter().enumerate() {
            println!(
                "{:<6} {:<9} {:>8.1}% {:>7} {:>6} {:>6}",
                i + 1,
                r.engine,
                100.0 * r.mean_success_rate,
                r.borda,
                r.best_count,
                r.worst_count
            );
        }
    }

    let doc = render_study_json(&result, &ReportMeta::from_env());
    validate_study_json(&doc).expect("emitted report must be well-formed");
    std::fs::write(&out_path, &doc).expect("writable output path");
    if !quiet {
        println!(
            "\nwrote {out_path} ({} cells, shape validated)",
            result.cells()
        );
        println!();
        print!("{}", render_metrics_summary(&result, &obs.snapshot()));
    }
}
