//! Sharded-study demonstration and smoke check: spins up N in-process
//! TCP workers on loopback, runs a study preset through the
//! [`DistributedStudyRunner`], re-runs it locally on one thread, and
//! verifies the two rendered `BENCH_study.json` documents are
//! **byte-identical** — the end-to-end pin of the wire protocol's
//! determinism contract.
//!
//! ```text
//! cargo run --release -p hycim-bench --bin shard_demo -- \
//!     --preset micro --workers 3 --shards 3
//! ```
//!
//! Exits nonzero if the distributed artifact diverges from the local
//! one, so CI can run it as a smoke step.

use hycim_bench::{
    render_study_json, Args, DistributedStudyRunner, ReportMeta, StudyRecipe, StudyRunner,
};
use hycim_net::{WorkerConfig, WorkerServer};

fn main() {
    let args = Args::parse();
    let preset = args.get_str("preset", "micro");
    let workers = args.get_usize("workers", 3);
    let shards = args.get_usize("shards", workers.max(1));
    let threads = args.get_usize("threads", 2);

    let recipe = StudyRecipe::preset(&preset).unwrap_or_else(|| {
        panic!(
            "unknown preset {preset:?} (available: {:?})",
            StudyRecipe::PRESETS
        )
    });
    println!(
        "sharding study '{}' over {workers} loopback workers ({shards} shards per cell):",
        recipe.name
    );
    print!("{recipe}");
    println!();

    // N in-process workers on ephemeral loopback ports — the same
    // server the standalone `hycim-worker` binary runs.
    let mut config = WorkerConfig::new();
    config.threads = threads;
    let handles: Vec<_> = (0..workers.max(1))
        .map(|_| {
            WorkerServer::bind("127.0.0.1:0", config.clone())
                .expect("bind loopback")
                .spawn()
        })
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
    for addr in &addrs {
        println!("worker listening on {addr}");
    }

    let distributed = DistributedStudyRunner::new(addrs)
        .with_shards(shards)
        .run(&recipe)
        .expect("distributed run completes");
    println!(
        "\ndistributed: {} cells, {} iterations, {:.2}s",
        distributed.cells(),
        distributed.total_iterations,
        distributed.wall_seconds
    );

    let local = StudyRunner::new()
        .with_threads(1)
        .run(&recipe)
        .expect("local run completes");
    println!(
        "local (1 thread): {} cells, {} iterations, {:.2}s",
        local.cells(),
        local.total_iterations,
        local.wall_seconds
    );

    let meta = ReportMeta::from_env();
    let wire_doc = render_study_json(&distributed, &meta);
    let local_doc = render_study_json(&local, &meta);
    for handle in handles {
        handle.stop();
    }

    if wire_doc == local_doc {
        println!(
            "\nsharded == local: byte-identical artifact ({} bytes)",
            wire_doc.len()
        );
    } else {
        let divergence = wire_doc
            .lines()
            .zip(local_doc.lines())
            .position(|(a, b)| a != b);
        eprintln!(
            "\nsharded artifact DIVERGED from the local run (first differing line: {:?})",
            divergence.map(|i| i + 1)
        );
        std::process::exit(1);
    }
}
