//! Aggregate-relaxation vs exact filter-bank comparison: the report
//! behind the bank pipeline (the multi-constraint extension of the
//! paper's single-filter architecture).
//!
//! For bin packing and the multi-dimensional knapsack, the
//! single-filter pipeline can only gate an *aggregate* capacity
//! (summed over bins/dimensions) — a necessary relaxation that lets
//! per-constraint violations through. The filter bank programs one
//! filter per constraint and gates them all concurrently, making both
//! problems exact in hardware. This report measures, per instance:
//!
//! * the domain-feasibility rate of returned solutions,
//! * the mean objective (violations for bin packing, negated profit
//!   for the MKP),
//! * the modeled matchline energy per SA iteration for one filter vs
//!   the k-filter bank ([`EnergyModel::bank_eval`]), plus the full
//!   iteration energy at the measured infeasible-proposal rate
//!   ([`EnergyModel::bank_iteration`]) — the energy cost of
//!   exactness.
//!
//! ```text
//! cargo run --release -p hycim-bench --bin fig_bank
//! cargo run --release -p hycim-bench --bin fig_bank -- --instances 2 --replicas 3 --sweeps 100
//! ```

use hycim_bench::{default_threads, mean, Args};
use hycim_cim::energy::EnergyModel;
use hycim_cop::binpack::BinPacking;
use hycim_cop::mkp::MkpGenerator;
use hycim_cop::CopProblem;
use hycim_core::{BankEngine, BatchRunner, HyCimConfig, HyCimEngine, Solution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Feasibility rate, mean objective, and mean value over a replica row.
fn summarize<P: CopProblem>(solutions: &[Solution<P>]) -> (f64, f64) {
    let feasible = solutions.iter().filter(|s| s.feasible).count() as f64;
    let objectives: Vec<f64> = solutions.iter().map(|s| s.objective).collect();
    (feasible / solutions.len() as f64, mean(&objectives))
}

/// A seeded bin-packing instance with filter-mappable sizes and a
/// packing guaranteed to exist (sizes drawn until FFD succeeds).
fn random_bin_packing(items: usize, bins: usize, seed: u64) -> BinPacking {
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let sizes: Vec<u64> = (0..items).map(|_| rng.random_range(2..=9)).collect();
        let total: u64 = sizes.iter().sum();
        // ~80% fill across the bins: tight but packable.
        let capacity = (total * 5 / 4 / bins as u64).max(9);
        let bp = BinPacking::new(sizes, capacity, bins).expect("valid sizes");
        if bp.first_fit_decreasing().is_some() {
            return bp;
        }
    }
}

fn main() {
    let args = Args::parse();
    let instances = args.get_usize("instances", 4);
    let items = args.get_usize("items", 8);
    let bins = args.get_usize("bins", 3);
    let dims = args.get_usize("dims", 3);
    let replicas = args.get_usize("replicas", 8);
    let sweeps = args.get_usize("sweeps", 300);
    let threads = args.get_usize("threads", default_threads());
    let seed = args.get_u64("seed", 1);

    let model = EnergyModel::paper();
    let config = HyCimConfig::default().with_sweeps(sweeps);
    let runner = BatchRunner::new().with_threads(threads);

    println!("=== bin packing: aggregate relaxation vs per-bin filter bank ===");
    println!(
        "{:<18} {:<10} {:>9} {:>10} {:>12} {:>12} {:>9}",
        "instance", "backend", "feas%", "mean obj", "ML J/iter", "J/iter", "filters"
    );
    let mut agg_feas = Vec::new();
    let mut bank_feas = Vec::new();
    for idx in 0..instances {
        let bp = random_bin_packing(items, bins, seed + idx as u64);
        let name = CopProblem::name(&bp);
        let hw_seed = seed + idx as u64;

        let aggregate = HyCimEngine::new(&bp, &config, hw_seed).expect("mappable");
        let bank = BankEngine::new(&bp, &config, hw_seed).expect("mappable");
        let agg_row = runner.run(&aggregate, replicas, seed);
        let bank_row = runner.run(&bank, replicas, seed);

        // Energy per SA iteration at a representative load (the first
        // replica's best): the matchline-only column isolates the
        // k-filter cost (one filter on the aggregate vs one per bin);
        // the full column weighs crossbar firings by the measured
        // infeasible-proposal rate, active cells ≈ half the programmed
        // coefficients at 7-bit quantization.
        let iq = CopProblem::to_inequality_qubo(&bp).expect("encodable");
        let mq = bp.to_multi_inequality_qubo().expect("encodable");
        let caps: Vec<u64> = mq.constraints().iter().map(|c| c.capacity()).collect();
        let (e_ml_agg, e_it_agg) = {
            let s = &agg_row[0];
            let (load, cap) = (
                iq.constraint().load(&s.assignment),
                iq.constraint().capacity(),
            );
            let (cols, cells) = (
                s.assignment.ones().max(1),
                iq.objective().nonzeros() * 7 / 2,
            );
            let infeas = s.trace.infeasible_fraction();
            (
                model.filter_eval(load, cap),
                infeas * model.hycim_iteration(load, cap, false, cols, 7, cells)
                    + (1.0 - infeas) * model.hycim_iteration(load, cap, true, cols, 7, cells),
            )
        };
        let (e_ml_bank, e_it_bank) = {
            let s = &bank_row[0];
            let loads = mq.loads(&s.assignment);
            let (cols, cells) = (
                s.assignment.ones().max(1),
                mq.objective().nonzeros() * 7 / 2,
            );
            let infeas = s.trace.infeasible_fraction();
            (
                model.bank_eval(&loads, &caps),
                infeas * model.bank_iteration(&loads, &caps, false, cols, 7, cells)
                    + (1.0 - infeas) * model.bank_iteration(&loads, &caps, true, cols, 7, cells),
            )
        };

        for (tag, row, e_ml, e_it, k) in [
            ("aggregate", &agg_row, e_ml_agg, e_it_agg, 1usize),
            (
                "bank",
                &bank_row,
                e_ml_bank,
                e_it_bank,
                mq.num_constraints(),
            ),
        ] {
            let (feas, obj) = summarize(row);
            println!(
                "{name:<18} {tag:<10} {:>8.0}% {obj:>10.2} {e_ml:>12.3e} {e_it:>12.3e} {k:>9}",
                feas * 100.0
            );
            if tag == "aggregate" {
                agg_feas.push(feas);
            } else {
                bank_feas.push(feas);
                // Bank solutions are bin-exact by construction.
                for s in row.iter() {
                    assert!(
                        mq.is_feasible(&s.assignment),
                        "bank returned a per-bin violation on {name}"
                    );
                }
            }
        }
    }

    let mut mkp_agg_feas = Vec::new();
    let mut mkp_bank_feas = Vec::new();
    println!("\n=== MKP: aggregate relaxation vs per-dimension filter bank ===");
    println!(
        "{:<18} {:<10} {:>9} {:>10} {:>10} {:>12} {:>12}",
        "instance", "backend", "feas%", "mean obj", "reference", "ML J/iter", "J/iter"
    );
    for idx in 0..instances {
        let mkp = MkpGenerator::new(items + 4, dims).generate(seed + 100 + idx as u64);
        let name = CopProblem::name(&mkp);
        let hw_seed = seed + idx as u64;
        let reference = mkp.reference_objective(seed).expect("always some");

        let aggregate = HyCimEngine::new(&mkp, &config, hw_seed).expect("mappable");
        let bank = BankEngine::new(&mkp, &config, hw_seed).expect("mappable");
        let agg_row = runner.run(&aggregate, replicas, seed);
        let bank_row = runner.run(&bank, replicas, seed);

        let iq = CopProblem::to_inequality_qubo(&mkp).expect("encodable");
        let mq = mkp.to_multi_inequality_qubo().expect("encodable");
        let caps: Vec<u64> = mq.constraints().iter().map(|c| c.capacity()).collect();
        let cells = iq.objective().nonzeros() * 7 / 2;
        let (e_ml_agg, e_it_agg) = {
            let s = &agg_row[0];
            let (load, cap) = (
                iq.constraint().load(&s.assignment),
                iq.constraint().capacity(),
            );
            let cols = s.assignment.ones().max(1);
            let infeas = s.trace.infeasible_fraction();
            (
                model.filter_eval(load, cap),
                infeas * model.hycim_iteration(load, cap, false, cols, 7, cells)
                    + (1.0 - infeas) * model.hycim_iteration(load, cap, true, cols, 7, cells),
            )
        };
        let (e_ml_bank, e_it_bank) = {
            let s = &bank_row[0];
            let loads = mq.loads(&s.assignment);
            let cols = s.assignment.ones().max(1);
            let infeas = s.trace.infeasible_fraction();
            (
                model.bank_eval(&loads, &caps),
                infeas * model.bank_iteration(&loads, &caps, false, cols, 7, cells)
                    + (1.0 - infeas) * model.bank_iteration(&loads, &caps, true, cols, 7, cells),
            )
        };

        for (tag, row, e_ml, e_it) in [
            ("aggregate", &agg_row, e_ml_agg, e_it_agg),
            ("bank", &bank_row, e_ml_bank, e_it_bank),
        ] {
            let (feas, obj) = summarize(row);
            println!(
                "{name:<18} {tag:<10} {:>8.0}% {obj:>10.2} {reference:>10.2} {e_ml:>12.3e} {e_it:>12.3e}",
                feas * 100.0
            );
            if tag == "aggregate" {
                mkp_agg_feas.push(feas);
            } else {
                mkp_bank_feas.push(feas);
                for s in row.iter() {
                    assert!(
                        mq.is_feasible(&s.assignment),
                        "bank returned a dimension violation on {name}"
                    );
                }
            }
        }
    }

    println!(
        "\nsummary: domain feasibility aggregate → bank: bin packing {:.0}% → {:.0}%, \
         MKP {:.0}% → {:.0}% (the bank is exact by construction); \
         exactness costs k× matchline energy per SA iteration",
        mean(&agg_feas) * 100.0,
        mean(&bank_feas) * 100.0,
        mean(&mkp_agg_feas) * 100.0,
        mean(&mkp_bank_feas) * 100.0,
    );
}
