//! Regenerates paper Fig. 9: per-instance hardware comparison of
//! HyCiM vs D-QUBO over the 40-instance benchmark set.
//!
//! * Fig. 9(a): largest QUBO matrix element `(Q_ij)MAX`
//!   (D-QUBO 4·10⁴..2.6·10⁷ vs HyCiM 100) and the implied crossbar
//!   bits (16–25 vs 7, a 56–72% reduction).
//! * Fig. 9(b): QUBO dimension (D-QUBO 200..2636 vs HyCiM 100) and the
//!   search-space reduction (2¹⁰⁰..2²⁵³⁶ configurations eliminated).
//! * Fig. 9(c): hardware size saving (paper: 88.06%..99.96%).
//!
//! ```text
//! cargo run --release -p hycim-bench --bin fig9_hardware
//! ```

use hycim_bench::Args;
use hycim_cim::area::{AreaModel, HardwareComparison};
use hycim_cop::generator::benchmark_set;
use hycim_qubo::dqubo::{AuxEncoding, PenaltyWeights};
use hycim_qubo::quant::required_bits;

fn main() {
    let args = Args::parse();
    let per_density = args.get_usize("per-density", 10);
    let instances = benchmark_set(100, per_density);
    let model = AreaModel::paper();

    println!(
        "{:<16} {:>4} {:>12} {:>6} {:>8} {:>12} {:>6} {:>9} {:>9} {:>9}",
        "instance",
        "n_H",
        "(Q)MAX_H",
        "bits_H",
        "n_D",
        "(Q)MAX_D",
        "bits_D",
        "bitred%",
        "ss-red",
        "saving%"
    );

    let mut savings = Vec::new();
    let mut bit_reductions = Vec::new();
    let mut dims = Vec::new();
    let mut qmaxes = Vec::new();

    for inst in &instances {
        // HyCiM side: the objective matrix only.
        let hy_qmax = inst.max_profit_coefficient() as f64;
        let hy_bits = required_bits(hy_qmax);
        let hy_dim = inst.num_items();

        // D-QUBO side: the expanded penalty matrix.
        let form = inst
            .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::OneHot)
            .expect("valid instance");
        let d_qmax = form.matrix().max_abs_element();
        let d_bits = required_bits(d_qmax);
        let d_dim = form.dim();

        let cmp = HardwareComparison::compute(&model, hy_dim, hy_bits, d_dim, d_bits);
        savings.push(cmp.saving_percent());
        bit_reductions.push(cmp.bit_reduction_percent());
        dims.push(d_dim as f64);
        qmaxes.push(d_qmax);

        println!(
            "{:<16} {:>4} {:>12.0} {:>6} {:>8} {:>12.3e} {:>6} {:>8.1}% {:>8} {:>8.2}%",
            inst.name(),
            hy_dim,
            hy_qmax,
            hy_bits,
            d_dim,
            d_qmax,
            d_bits,
            cmp.bit_reduction_percent(),
            format!("2^{}", cmp.search_space_reduction_log2()),
            cmp.saving_percent()
        );
    }

    let (qlo, qhi) = hycim_bench::min_max(&qmaxes);
    let (dlo, dhi) = hycim_bench::min_max(&dims);
    let (blo, bhi) = hycim_bench::min_max(&bit_reductions);
    let (slo, shi) = hycim_bench::min_max(&savings);
    println!("\n== summary over {} instances ==", instances.len());
    println!("Fig 9(a): D-QUBO (Q)MAX {qlo:.2e}..{qhi:.2e}   (paper: 4.0e4..2.6e7); HyCiM = 100");
    println!("          bit reduction {blo:.1}%..{bhi:.1}%        (paper: 56%..72%)");
    println!(
        "Fig 9(b): D-QUBO dimension {dlo:.0}..{dhi:.0}        (paper: 200..2636); HyCiM = 100"
    );
    println!(
        "          search-space reduction 2^{:.0}..2^{:.0} (paper: 2^100..2^2536)",
        dlo - 100.0,
        dhi - 100.0
    );
    println!("Fig 9(c): hardware size saving {slo:.2}%..{shi:.2}% (paper: 88.06%..99.96%)");
}
