//! Energy-efficiency comparison backing the paper's Sec 4.2 claim that
//! the hardware reduction "indicates improved energy efficiency":
//! estimates per-SA-iteration and per-solve energy for HyCiM vs the
//! D-QUBO baseline using the `hycim-cim` energy model and *measured*
//! run statistics (infeasible fraction, active cell counts), with the
//! measurement runs fanned out by the parallel `BatchRunner`.
//!
//! ```text
//! cargo run --release -p hycim-bench --bin energy_report
//! ```

use hycim_bench::{default_threads, Args};
use hycim_cim::energy::EnergyModel;
use hycim_cop::generator::benchmark_set;
use hycim_cop::CopProblem;
use hycim_core::{BatchRunner, HyCimConfig, HyCimSolver};
use hycim_qubo::dqubo::{AuxEncoding, PenaltyWeights};
use hycim_qubo::quant::matrix_bits;

fn main() {
    let args = Args::parse();
    let per_density = args.get_usize("per-density", 2);
    let sweeps = args.get_usize("sweeps", 200);
    let threads = args.get_usize("threads", default_threads());
    let seed = args.get_u64("seed", 1);

    let model = EnergyModel::paper();
    let instances = benchmark_set(100, per_density);
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "instance", "infeas%", "HyCiM J/it", "DQUBO J/it", "ratio", "note"
    );

    // Measure the infeasible-proposal fraction from real runs, one
    // replica per instance, all instances in parallel.
    let config = HyCimConfig::default().with_sweeps(sweeps);
    let engines: Vec<HyCimSolver> = instances
        .iter()
        .enumerate()
        .map(|(idx, inst)| HyCimSolver::new(inst, &config, seed + idx as u64).expect("mappable"))
        .collect();
    let grid = BatchRunner::new()
        .with_threads(threads)
        .run_grid(&engines, 1, seed);

    let mut ratios = Vec::new();
    for (inst, solutions) in instances.iter().zip(&grid) {
        let solution = &solutions[0];
        let infeasible_frac = solution.trace.infeasible_fraction();

        // HyCiM per-iteration energy: filter always; crossbar only on
        // the feasible fraction. Typical active columns ≈ selected
        // items; active cells ≈ selected² · density · bits / 2.
        let n_sel = solution.assignment.ones().max(1);
        let density = inst.density();
        let h_cells = (n_sel * n_sel) as f64 * density * 7.0 / 2.0;
        let load = inst.load(&solution.assignment);
        let e_feasible =
            model.hycim_iteration(load, inst.capacity(), true, n_sel, 7, h_cells as usize);
        let e_infeasible = model.hycim_iteration(
            inst.capacity() + 10,
            inst.capacity(),
            false,
            n_sel,
            7,
            h_cells as usize,
        );
        let e_hycim = infeasible_frac * e_infeasible + (1.0 - infeasible_frac) * e_feasible;

        // D-QUBO per-iteration: full crossbar on the (n+C)-dimension
        // matrix, every iteration.
        let form = inst
            .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::OneHot)
            .expect("transformable");
        let d_dim = form.dim();
        let d_bits = matrix_bits(form.matrix());
        // Half the variables active on average; the y-block is dense.
        let d_cells = (d_dim * d_dim) as f64 / 4.0 * f64::from(d_bits) / 2.0;
        let e_dqubo = model.dqubo_iteration(d_dim / 2, d_bits, d_cells as usize);

        let ratio = e_dqubo / e_hycim;
        ratios.push(ratio);
        println!(
            "{:<16} {:>9.1}% {:>12.3e} {:>12.3e} {:>11.0}x {:>8}",
            CopProblem::name(inst),
            infeasible_frac * 100.0,
            e_hycim,
            e_dqubo,
            ratio,
            format!("C={}", inst.capacity())
        );
    }
    println!(
        "\nD-QUBO spends {:.0}x..{:.0}x more energy per SA iteration than HyCiM \
         (driven by the n² · bits cell count of Fig. 9)",
        ratios.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
        ratios.iter().fold(0.0f64, |a, &b| a.max(b)),
    );
}
