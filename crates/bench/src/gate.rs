//! The BENCH regression gate: diffs a fresh gate-recipe run against
//! the committed `BENCH_study.json` within tolerance bands, and
//! re-times a small hotpath probe against `BENCH_hotpath.json`.
//!
//! Tolerance policy (see ARCHITECTURE.md "The study harness"):
//!
//! * **Quality regressions fail.** A cell's success rate dropping more
//!   than `success_drop` below the committed value, or its best/mean
//!   objective worsening by more than `objective_rel` of the committed
//!   magnitude, is a hard failure — as is a fresh cell missing from
//!   the committed document, or a finite committed objective turning
//!   non-finite.
//! * **Improvements warn.** A cell clearly beating its committed
//!   values means the artifact is stale; the gate asks for a
//!   regeneration instead of failing.
//! * **Throughput drifts warn.** Wall-clock depends on the machine, so
//!   the hotpath probe only warns when local throughput falls below
//!   `throughput_ratio` × the committed iterations/second. The same
//!   warn-only policy covers the v3 replica rows
//!   ([`replica_throughput_drift`]): packed replica throughput drifting
//!   below the ratio is advisory. The one replica check that *does*
//!   fail is bit-identity — a packed lane diverging from its scalar
//!   `replica_seed` twin is a correctness break, not machine noise.

use crate::check::{parse_hotpath_rows, parse_replica_rows, CommittedCell};
use crate::hotpath::{family_row, replica_family_row};
use crate::stats::CellSummary;

/// Tolerance bands of the gate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateTolerances {
    /// Maximum tolerated absolute success-rate drop per cell.
    pub success_drop: f64,
    /// Maximum tolerated relative objective worsening per cell
    /// (fraction of `max(|committed|, 1)`).
    pub objective_rel: f64,
    /// Throughput warning threshold: warn when fresh iterations/sec
    /// fall below this fraction of the committed value.
    pub throughput_ratio: f64,
}

impl Default for GateTolerances {
    fn default() -> Self {
        Self {
            success_drop: 0.10,
            objective_rel: 0.05,
            throughput_ratio: 0.40,
        }
    }
}

/// Outcome of a gate comparison: hard failures (exit nonzero) and
/// advisory warnings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Quality regressions and structural mismatches.
    pub failures: Vec<String>,
    /// Stale-artifact and throughput-drift advisories.
    pub warnings: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes (warnings allowed).
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Merges another report's findings into this one.
    pub fn merge(&mut self, other: GateReport) {
        self.failures.extend(other.failures);
        self.warnings.extend(other.warnings);
    }
}

/// A worsening beyond tolerance of a minimized objective, scaled to
/// the committed magnitude.
fn worsened(fresh: f64, committed: f64, rel: f64) -> bool {
    fresh > committed + rel * committed.abs().max(1.0)
}

/// Diffs fresh study cells against the committed cells.
///
/// Every fresh cell must find its committed counterpart by (problem
/// key, engine tag) — instance-keyed seeding makes the pairs directly
/// comparable even when the committed document came from a superset
/// recipe. Committed cells with no fresh counterpart are ignored
/// (the gate recipe is a subset by design).
pub fn diff_study_cells(
    committed: &[CommittedCell],
    fresh: &[(String, CellSummary)],
    tol: &GateTolerances,
) -> GateReport {
    let mut report = GateReport::default();
    if fresh.is_empty() {
        report.failures.push("fresh run produced no cells".into());
        return report;
    }
    for (problem, cell) in fresh {
        let label = format!("{problem}/{}", cell.engine);
        let Some(base) = committed
            .iter()
            .find(|c| &c.problem == problem && c.engine == cell.engine)
        else {
            report.failures.push(format!(
                "{label}: no committed cell — regenerate BENCH_study.json \
                 (cargo run --release -p hycim-bench --bin study_report)"
            ));
            continue;
        };
        if cell.success_rate < base.success_rate - tol.success_drop {
            report.failures.push(format!(
                "{label}: success rate {:.4} fell below committed {:.4} (tolerance {:.2})",
                cell.success_rate, base.success_rate, tol.success_drop
            ));
        } else if cell.success_rate > base.success_rate + tol.success_drop {
            report.warnings.push(format!(
                "{label}: success rate improved {:.4} -> {:.4}; regenerate BENCH_study.json",
                base.success_rate, cell.success_rate
            ));
        }
        for (what, fresh_v, base_v) in [
            ("best objective", cell.best_objective, base.best_objective),
            ("mean objective", cell.mean_objective, base.mean_objective),
        ] {
            match base_v {
                None => {} // committed null: nothing to regress against
                Some(base_v) if !fresh_v.is_finite() => {
                    report.failures.push(format!(
                        "{label}: {what} turned non-finite (committed {base_v:.4})"
                    ));
                }
                Some(base_v) if worsened(fresh_v, base_v, tol.objective_rel) => {
                    report.failures.push(format!(
                        "{label}: {what} worsened {base_v:.4} -> {fresh_v:.4} \
                         (tolerance {:.0}%)",
                        100.0 * tol.objective_rel
                    ));
                }
                Some(base_v) if worsened(base_v, fresh_v, tol.objective_rel) => {
                    report.warnings.push(format!(
                        "{label}: {what} improved {base_v:.4} -> {fresh_v:.4}; \
                         regenerate BENCH_study.json"
                    ));
                }
                Some(_) => {}
            }
        }
    }
    report
}

/// Re-times one small hotpath cell per committed probe family and
/// warns when local throughput drifted below the tolerance ratio.
/// Probe cells use the same generation parameters as the
/// `hotpath_report` defaults, at the smallest committed size, so the
/// comparison is like-for-like.
pub fn throughput_drift(committed_hotpath: &str, tol: &GateTolerances) -> GateReport {
    let mut report = GateReport::default();
    let rows = match parse_hotpath_rows(committed_hotpath) {
        Ok(rows) => rows,
        Err(e) => {
            report
                .failures
                .push(format!("committed hotpath document: {e}"));
            return report;
        }
    };
    for family in ["maxcut", "spinglass"] {
        let Some((_, n, committed_ips)) = rows
            .iter()
            .filter(|(f, _, _)| f == family)
            .min_by_key(|(_, n, _)| *n)
            .cloned()
        else {
            continue;
        };
        let fresh = family_row(family, n, 60, 1, 0.05, 0.25);
        if fresh.local_ips < tol.throughput_ratio * committed_ips {
            report.warnings.push(format!(
                "{family} n={n}: local throughput {:.0} it/s below {:.0}% of committed {:.0} \
                 (machine-dependent; advisory only)",
                fresh.local_ips,
                100.0 * tol.throughput_ratio,
                committed_ips
            ));
        }
    }
    report
}

/// Re-times one small packed-vs-scalar replica cell per committed
/// replica-row family and warns when the packed replica throughput
/// drifted below the tolerance ratio. **Warn-only by design**: replica
/// throughput is as machine-dependent as the scalar hotpath numbers,
/// so like [`throughput_drift`] this check never contributes a
/// failure — a pre-v3 artifact (no replica rows) or even an
/// unextractable replica block only produces advisories.
pub fn replica_throughput_drift(committed_hotpath: &str, tol: &GateTolerances) -> GateReport {
    let mut report = GateReport::default();
    let rows = match parse_replica_rows(committed_hotpath) {
        Ok(rows) => rows,
        Err(e) => {
            report.warnings.push(format!(
                "committed replica rows unreadable ({e}); skipping drift probe"
            ));
            return report;
        }
    };
    for family in ["maxcut", "spinglass"] {
        let Some((_, n, sweeps, committed_ips)) = rows
            .iter()
            .filter(|(f, _, _, _)| f == family)
            .min_by_key(|(_, n, _, _)| *n)
            .cloned()
        else {
            continue;
        };
        // Replay the committed row's own sweep count: packed
        // throughput rises with run length (setup amortization, the
        // draw-free cold tail), so a shorter probe would chronically
        // under-read the committed number.
        let fresh = replica_family_row(family, n, sweeps, 1, 0.05, 0.25);
        if fresh.packed_ips < tol.throughput_ratio * committed_ips {
            report.warnings.push(format!(
                "{family} n={n}: packed replica throughput {:.0} it/s below {:.0}% of \
                 committed {:.0} (machine-dependent; advisory only)",
                fresh.packed_ips,
                100.0 * tol.throughput_ratio,
                committed_ips
            ));
        }
        if !fresh.bit_identical {
            report.failures.push(format!(
                "{family} n={n}: packed lanes diverged from their scalar replica_seed twins"
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed(problem: &str, engine: &str, success: f64, best: f64, mean: f64) -> CommittedCell {
        CommittedCell {
            problem: problem.into(),
            engine: engine.into(),
            success_rate: success,
            best_objective: Some(best),
            mean_objective: Some(mean),
        }
    }

    fn fresh(
        problem: &str,
        engine: &str,
        success: f64,
        best: f64,
        mean: f64,
    ) -> (String, CellSummary) {
        (
            problem.into(),
            CellSummary {
                engine: engine.into(),
                success_rate: success,
                feasible_rate: 1.0,
                best_objective: best,
                mean_objective: mean,
                mean_iters_to_best: 1.0,
                iterations: 10,
            },
        )
    }

    #[test]
    fn identical_cells_pass_cleanly() {
        let base = vec![committed("p", "hycim", 0.8, -10.0, -9.0)];
        let run = vec![fresh("p", "hycim", 0.8, -10.0, -9.0)];
        let report = diff_study_cells(&base, &run, &GateTolerances::default());
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn doctored_success_rate_fails_the_gate() {
        // The committed file claims a success rate the fresh run can't
        // reach (the CI doctoring scenario: sed inflating a committed
        // 0.6 to 1.0 makes the honest 0.6 look like a regression).
        let base = vec![committed("p", "dqubo", 1.0, -10.0, -9.0)];
        let run = vec![fresh("p", "dqubo", 0.6, -10.0, -9.0)];
        let report = diff_study_cells(&base, &run, &GateTolerances::default());
        assert!(!report.passed());
        assert!(report.failures[0].contains("success rate"));
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let base = vec![committed("p", "hycim", 0.9, -10.0, -9.5)];
        let run = vec![fresh("p", "hycim", 0.85, -9.8, -9.4)];
        let report = diff_study_cells(&base, &run, &GateTolerances::default());
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn objective_worsening_beyond_tolerance_fails() {
        let base = vec![committed("p", "bank", 1.0, -100.0, -95.0)];
        let run = vec![fresh("p", "bank", 1.0, -90.0, -85.0)];
        let report = diff_study_cells(&base, &run, &GateTolerances::default());
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
        assert!(report.failures[0].contains("best objective worsened"));
    }

    #[test]
    fn improvements_warn_to_regenerate() {
        let base = vec![committed("p", "hycim", 0.5, -90.0, -85.0)];
        let run = vec![fresh("p", "hycim", 0.9, -100.0, -95.0)];
        let report = diff_study_cells(&base, &run, &GateTolerances::default());
        assert!(report.passed());
        assert_eq!(report.warnings.len(), 3, "{:?}", report.warnings);
        assert!(report.warnings.iter().all(|w| w.contains("regenerate")));
    }

    #[test]
    fn missing_committed_cell_fails() {
        let report = diff_study_cells(
            &[],
            &[fresh("p", "hycim", 1.0, -1.0, -1.0)],
            &GateTolerances::default(),
        );
        assert!(!report.passed());
        assert!(report.failures[0].contains("no committed cell"));
    }

    #[test]
    fn non_finite_fresh_objective_fails_against_finite_committed() {
        let base = vec![committed("p", "dqubo", 0.0, -5.0, -5.0)];
        let run = vec![fresh("p", "dqubo", 0.0, f64::INFINITY, f64::INFINITY)];
        let report = diff_study_cells(&base, &run, &GateTolerances::default());
        assert_eq!(report.failures.len(), 2);
        assert!(report.failures[0].contains("non-finite"));
        // But a committed null tolerates anything.
        let base_null = vec![CommittedCell {
            best_objective: None,
            mean_objective: None,
            ..base[0].clone()
        }];
        assert!(diff_study_cells(&base_null, &run, &GateTolerances::default()).passed());
    }

    fn v3_doc_with_replica_ips(ips: &str) -> String {
        format!(
            "{{\n  \"schema\": \"hycim-hotpath/v3\",\n  \"meta\": {{ \"generated\": \"unknown\", \
             \"git\": \"unknown\" }},\n  \"rows\": [\n    {{ \"family\": \"maxcut\", \"state\": \
             \"software\", \"n\": 16, \"nnz\": 10, \"avg_degree\": 2.0, \"iterations\": 100, \
             \"dense_iters_per_sec\": 1e6, \"local_iters_per_sec\": 9e6, \"speedup\": 9.0, \
             \"bit_identical\": true }}\n  ],\n  \"replica_rows\": [\n    {{ \"lanes\": 64, \
             \"family\": \"maxcut\", \"n\": 16, \"nnz\": 10, \"avg_degree\": 2.0, \"sweeps\": 30, \
             \"scalar_iters_per_sec\": 8e6, \"packed_iters_per_sec\": {ips}, \
             \"replica_speedup\": 15.0, \"bit_identical\": true }}\n  ]\n}}\n"
        )
    }

    #[test]
    fn doctored_replica_throughput_warns_but_never_fails() {
        // The CI doctoring scenario: a committed packed throughput
        // inflated far beyond what any machine reaches. The drift is
        // advisory — warnings, zero failures.
        let doctored = v3_doc_with_replica_ips("1e15");
        let report = replica_throughput_drift(&doctored, &GateTolerances::default());
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
        assert!(report.warnings[0].contains("packed replica throughput"));
        assert!(report.warnings[0].contains("advisory only"));
    }

    #[test]
    fn honest_replica_throughput_passes_silently() {
        // A committed value low enough that any machine beats it.
        let honest = v3_doc_with_replica_ips("1.0");
        let report = replica_throughput_drift(&honest, &GateTolerances::default());
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn pre_v3_artifacts_skip_the_replica_probe() {
        let v2 = "{\n  \"schema\": \"hycim-hotpath/v2\",\n  \"meta\": { \"generated\": \
                  \"unknown\", \"git\": \"unknown\" },\n  \"rows\": [\n    { \"family\": \
                  \"maxcut\", \"n\": 64, \"local_iters_per_sec\": 9e6 }\n  ]\n}\n";
        let report = replica_throughput_drift(v2, &GateTolerances::default());
        assert!(report.passed());
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn merge_concatenates_findings() {
        let mut a = GateReport {
            failures: vec!["f1".into()],
            warnings: vec![],
        };
        a.merge(GateReport {
            failures: vec!["f2".into()],
            warnings: vec!["w1".into()],
        });
        assert_eq!(a.failures.len(), 2);
        assert_eq!(a.warnings.len(), 1);
        assert!(!a.passed());
    }
}
