//! SA hot-path throughput measurement: dense O(n) row-scan deltas vs
//! the maintained local-field backend, shared by the `hotpath_report`
//! bin (which sweeps the full family × size matrix) and the
//! `bench_gate` bin (which re-times a single small probe cell for the
//! throughput-drift warning).

use std::time::Instant;

use hycim_anneal::{
    AnnealState, AnnealTrace, Annealer, GeometricSchedule, PenaltyState, SoftwareState,
};
use hycim_cop::generator::QkpGenerator;
use hycim_cop::maxcut::MaxCut;
use hycim_cop::spinglass::SpinGlass;
use hycim_cop::CopProblem;
use hycim_qubo::dqubo::{AuxEncoding, PenaltyWeights};
use hycim_qubo::{Assignment, InequalityQubo, QuboMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::check::{ReportMeta, HOTPATH_SCHEMA};

/// One (family, n) cell of the hotpath report.
#[derive(Debug, Clone, PartialEq)]
pub struct HotpathRow {
    /// Problem family tag (`"maxcut"`, `"spinglass"`, `"qkp"`,
    /// `"qkp-dqubo"`).
    pub family: &'static str,
    /// Anneal-state backend (`"software"` or `"penalty"`).
    pub state: &'static str,
    /// Encoded dimension.
    pub n: usize,
    /// Nonzeros of the encoded matrix.
    pub nnz: usize,
    /// Average off-diagonal degree.
    pub avg_degree: f64,
    /// Iterations per timed run.
    pub iterations: usize,
    /// Dense-delta backend throughput, iterations/second.
    pub dense_ips: f64,
    /// Local-field backend throughput, iterations/second.
    pub local_ips: f64,
    /// Whether both backends produced bit-identical trajectories.
    pub bit_identical: bool,
}

impl HotpathRow {
    /// Local-field speedup over the dense backend.
    pub fn speedup(&self) -> f64 {
        self.local_ips / self.dense_ips
    }
}

fn degree_stats(q: &QuboMatrix) -> (usize, f64) {
    let nnz = q.nonzeros();
    let off_diag = q.iter_nonzero().filter(|&(i, j, _)| i != j).count();
    let avg_degree = 2.0 * off_diag as f64 / q.dim().max(1) as f64;
    (nnz, avg_degree)
}

/// Times `annealer.run` on a fresh state from `make`, returning
/// (iterations/sec, final trace). One untimed warmup run absorbs
/// first-touch effects.
fn time_run<S: AnnealState>(
    annealer: &Annealer<GeometricSchedule>,
    seed: u64,
    make: impl Fn() -> S,
) -> (f64, AnnealTrace) {
    let mut warm = make();
    let mut rng = StdRng::seed_from_u64(seed);
    let _ = annealer.run(&mut warm, &mut rng);

    let mut state = make();
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let trace = annealer.run(&mut state, &mut rng);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (annealer.iterations() as f64 / elapsed, trace)
}

/// Times one inequality-QUBO encoding on both software delta backends.
pub fn software_row(
    family: &'static str,
    iq: &InequalityQubo,
    iters_per_var: usize,
    seed: u64,
) -> HotpathRow {
    let n = iq.dim();
    let iterations = (iters_per_var * n).max(1);
    let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.999), iterations).without_trace();
    let (dense_ips, dense_trace) = time_run(&annealer, seed, || {
        SoftwareState::new(iq, Assignment::zeros(n)).with_dense_deltas()
    });
    let (local_ips, local_trace) = time_run(&annealer, seed, || {
        SoftwareState::new(iq, Assignment::zeros(n))
    });
    let (nnz, avg_degree) = degree_stats(iq.objective());
    HotpathRow {
        family,
        state: "software",
        n,
        nnz,
        avg_degree,
        iterations,
        dense_ips,
        local_ips,
        bit_identical: dense_trace == local_trace,
    }
}

/// Times the D-QUBO penalty encoding of a generated QKP instance on
/// both delta backends.
pub fn penalty_row(n_items: usize, iters_per_var: usize, seed: u64) -> HotpathRow {
    let inst = QkpGenerator::new(n_items, 0.25).generate(seed);
    let form = inst
        .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::Binary)
        .expect("QKP transforms");
    let n = form.dim();
    let iterations = (iters_per_var * n).max(1);
    let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.999), iterations).without_trace();
    let (dense_ips, dense_trace) = time_run(&annealer, seed, || {
        PenaltyState::new(&form, Assignment::zeros(n)).with_dense_deltas()
    });
    let (local_ips, local_trace) = time_run(&annealer, seed, || {
        PenaltyState::new(&form, Assignment::zeros(n))
    });
    let (nnz, avg_degree) = degree_stats(form.matrix());
    HotpathRow {
        family: "qkp-dqubo",
        state: "penalty",
        n,
        nnz,
        avg_degree,
        iterations,
        dense_ips,
        local_ips,
        bit_identical: dense_trace == local_trace,
    }
}

/// Builds the row for one named family at size `n`, with the same
/// generation parameters for every caller (so the gate's drift probe
/// re-measures exactly what `hotpath_report` committed).
///
/// # Panics
///
/// Panics on an unknown family tag.
pub fn family_row(
    family: &str,
    n: usize,
    iters_per_var: usize,
    seed: u64,
    maxcut_density: f64,
    qkp_density: f64,
) -> HotpathRow {
    match family {
        "maxcut" => {
            let g = MaxCut::random(n, maxcut_density, seed.wrapping_add(n as u64));
            let iq = CopProblem::to_inequality_qubo(&g).expect("max-cut encodes");
            software_row("maxcut", &iq, iters_per_var, seed)
        }
        "spinglass" => {
            let sg =
                SpinGlass::random_binary(n.max(2), seed.wrapping_add(n as u64)).expect("n >= 2");
            let iq = CopProblem::to_inequality_qubo(&sg).expect("spin glass encodes");
            software_row("spinglass", &iq, iters_per_var, seed)
        }
        "qkp" => {
            let inst = QkpGenerator::new(n, qkp_density).generate(seed);
            let iq = inst.to_inequality_qubo().expect("QKP encodes");
            software_row("qkp", &iq, iters_per_var, seed)
        }
        "qkp-dqubo" => penalty_row(n, iters_per_var, seed),
        other => panic!("unknown family {other:?}"),
    }
}

/// Renders the `BENCH_hotpath.json` (schema v2) document.
pub fn render_hotpath_json(rows: &[HotpathRow], iters_per_var: usize, meta: &ReportMeta) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{HOTPATH_SCHEMA}\",\n"));
    out.push_str("  \"bin\": \"hotpath_report\",\n");
    out.push_str(&format!("  {},\n", meta.render()));
    out.push_str("  \"units\": \"iterations_per_second\",\n");
    out.push_str(&format!("  \"iters_per_var\": {iters_per_var},\n"));
    out.push_str("  \"rows\": [\n");
    for (k, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"family\": \"{}\", \"state\": \"{}\", \"n\": {}, \"nnz\": {}, \
             \"avg_degree\": {:.2}, \"iterations\": {}, \"dense_iters_per_sec\": {:.1}, \
             \"local_iters_per_sec\": {:.1}, \"speedup\": {:.2}, \"bit_identical\": {} }}{}\n",
            r.family,
            r.state,
            r.n,
            r.nnz,
            r.avg_degree,
            r.iterations,
            r.dense_ips,
            r.local_ips,
            r.speedup(),
            r.bit_identical,
            if k + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{parse_hotpath_rows, validate_hotpath_json};

    #[test]
    fn family_rows_time_and_stay_bit_identical() {
        for family in ["maxcut", "spinglass", "qkp", "qkp-dqubo"] {
            let row = family_row(family, 24, 4, 1, 0.3, 0.25);
            assert!(row.dense_ips > 0.0 && row.local_ips > 0.0, "{family}");
            assert!(row.bit_identical, "{family} trajectories diverged");
        }
    }

    #[test]
    fn rendered_v2_report_validates_and_extracts() {
        let rows = vec![family_row("maxcut", 16, 3, 1, 0.3, 0.25)];
        let doc = render_hotpath_json(&rows, 3, &ReportMeta::unknown());
        validate_hotpath_json(&doc).expect("v2 document validates");
        let extracted = parse_hotpath_rows(&doc).expect("rows extract");
        assert_eq!(extracted.len(), 1);
        assert_eq!(extracted[0].0, "maxcut");
        assert_eq!(extracted[0].1, 16);
    }
}
