//! SA hot-path throughput measurement: dense O(n) row-scan deltas vs
//! the maintained local-field backend, shared by the `hotpath_report`
//! bin (which sweeps the full family × size matrix) and the
//! `bench_gate` bin (which re-times a single small probe cell for the
//! throughput-drift warning).

use std::time::Instant;

use hycim_anneal::{
    run_replica_scalar, AnnealState, AnnealTrace, Annealer, GeometricSchedule, PackedSoftwareState,
    PenaltyState, SoftwareState,
};
use hycim_cop::generator::QkpGenerator;
use hycim_cop::maxcut::MaxCut;
use hycim_cop::spinglass::SpinGlass;
use hycim_cop::CopProblem;
use hycim_core::{replica_seed, PackedConfig, PackedEngine};
use hycim_qubo::dqubo::{AuxEncoding, PenaltyWeights};
use hycim_qubo::{Assignment, InequalityQubo, QuboMatrix, LANES};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::check::{ReportMeta, HOTPATH_SCHEMA};

/// One (family, n) cell of the hotpath report.
#[derive(Debug, Clone, PartialEq)]
pub struct HotpathRow {
    /// Problem family tag (`"maxcut"`, `"spinglass"`, `"qkp"`,
    /// `"qkp-dqubo"`).
    pub family: &'static str,
    /// Anneal-state backend (`"software"` or `"penalty"`).
    pub state: &'static str,
    /// Encoded dimension.
    pub n: usize,
    /// Nonzeros of the encoded matrix.
    pub nnz: usize,
    /// Average off-diagonal degree.
    pub avg_degree: f64,
    /// Iterations per timed run.
    pub iterations: usize,
    /// Dense-delta backend throughput, iterations/second.
    pub dense_ips: f64,
    /// Local-field backend throughput, iterations/second.
    pub local_ips: f64,
    /// Whether both backends produced bit-identical trajectories.
    pub bit_identical: bool,
}

impl HotpathRow {
    /// Local-field speedup over the dense backend.
    pub fn speedup(&self) -> f64 {
        self.local_ips / self.dense_ips
    }
}

fn degree_stats(q: &QuboMatrix) -> (usize, f64) {
    let nnz = q.nonzeros();
    let off_diag = q.iter_nonzero().filter(|&(i, j, _)| i != j).count();
    let avg_degree = 2.0 * off_diag as f64 / q.dim().max(1) as f64;
    (nnz, avg_degree)
}

/// Times `annealer.run` on a fresh state from `make`, returning
/// (iterations/sec, final trace). One untimed warmup run absorbs
/// first-touch effects.
fn time_run<S: AnnealState>(
    annealer: &Annealer<GeometricSchedule>,
    seed: u64,
    make: impl Fn() -> S,
) -> (f64, AnnealTrace) {
    let mut warm = make();
    let mut rng = StdRng::seed_from_u64(seed);
    let _ = annealer.run(&mut warm, &mut rng);

    let mut state = make();
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let trace = annealer.run(&mut state, &mut rng);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (annealer.iterations() as f64 / elapsed, trace)
}

/// Times one inequality-QUBO encoding on both software delta backends.
pub fn software_row(
    family: &'static str,
    iq: &InequalityQubo,
    iters_per_var: usize,
    seed: u64,
) -> HotpathRow {
    let n = iq.dim();
    let iterations = (iters_per_var * n).max(1);
    let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.999), iterations).without_trace();
    let (dense_ips, dense_trace) = time_run(&annealer, seed, || {
        SoftwareState::new(iq, Assignment::zeros(n)).with_dense_deltas()
    });
    let (local_ips, local_trace) = time_run(&annealer, seed, || {
        SoftwareState::new(iq, Assignment::zeros(n))
    });
    let (nnz, avg_degree) = degree_stats(iq.objective());
    HotpathRow {
        family,
        state: "software",
        n,
        nnz,
        avg_degree,
        iterations,
        dense_ips,
        local_ips,
        bit_identical: dense_trace == local_trace,
    }
}

/// Times the D-QUBO penalty encoding of a generated QKP instance on
/// both delta backends.
pub fn penalty_row(n_items: usize, iters_per_var: usize, seed: u64) -> HotpathRow {
    let inst = QkpGenerator::new(n_items, 0.25).generate(seed);
    let form = inst
        .to_dqubo(PenaltyWeights::PAPER, AuxEncoding::Binary)
        .expect("QKP transforms");
    let n = form.dim();
    let iterations = (iters_per_var * n).max(1);
    let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.999), iterations).without_trace();
    let (dense_ips, dense_trace) = time_run(&annealer, seed, || {
        PenaltyState::new(&form, Assignment::zeros(n)).with_dense_deltas()
    });
    let (local_ips, local_trace) = time_run(&annealer, seed, || {
        PenaltyState::new(&form, Assignment::zeros(n))
    });
    let (nnz, avg_degree) = degree_stats(form.matrix());
    HotpathRow {
        family: "qkp-dqubo",
        state: "penalty",
        n,
        nnz,
        avg_degree,
        iterations,
        dense_ips,
        local_ips,
        bit_identical: dense_trace == local_trace,
    }
}

/// One (family, n) replica-throughput cell: the bit-parallel packed
/// engine (64 replicas per pass) against one production scalar
/// annealing replica on the same encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaRow {
    /// Problem family tag (`"maxcut"`, `"spinglass"`, `"qkp"`).
    pub family: &'static str,
    /// Encoded dimension.
    pub n: usize,
    /// Nonzeros of the encoded matrix.
    pub nnz: usize,
    /// Average off-diagonal degree.
    pub avg_degree: f64,
    /// Replicas advanced per packed pass ([`LANES`]).
    pub lanes: usize,
    /// Sweeps per replica in the timed runs.
    pub sweeps: usize,
    /// Production scalar path (local-field [`Annealer`] run):
    /// replica-iterations/second of one replica.
    pub scalar_ips: f64,
    /// Packed engine: replica-iterations/second summed over all 64
    /// lanes (`lanes × n × sweeps / wall`).
    pub packed_ips: f64,
    /// Whether every packed lane reproduced its scalar sweep-reference
    /// twin bit-for-bit under the `replica_seed` stream contract.
    pub bit_identical: bool,
}

impl ReplicaRow {
    /// Packed replica-throughput speedup over one scalar replica.
    pub fn speedup(&self) -> f64 {
        self.packed_ips / self.scalar_ips
    }
}

/// Times one inequality-QUBO encoding on the packed 64-lane engine vs
/// the production scalar annealing path, and verifies all 64 lanes
/// against their scalar sweep-reference twins.
pub fn replica_row(
    family: &'static str,
    iq: &InequalityQubo,
    sweeps: usize,
    seed: u64,
) -> ReplicaRow {
    let n = iq.dim();
    let config = PackedConfig::paper().with_sweeps(sweeps);
    let engine = PackedEngine::new(iq, &config).expect("raw inequality QUBO encodes");

    // Packed side: one untimed warmup absorbs first-touch effects;
    // the fastest of three timed runs is the least-interference
    // estimate (both sides are timed the same way).
    let _ = engine.lane_outcomes(seed);
    let mut packed = None;
    let mut best_elapsed = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let outcome = engine.lane_outcomes(seed);
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        best_elapsed = best_elapsed.min(elapsed);
        packed = Some(outcome);
    }
    let packed = packed.expect("three timed runs");
    let packed_ips = (LANES * n * sweeps) as f64 / best_elapsed;

    // Scalar baseline: the production per-replica annealing loop on
    // maintained local fields (the same path `run_annealing` drives),
    // doing one replica's worth of iterations.
    let iterations = (n * sweeps).max(1);
    let annealer = Annealer::new(GeometricSchedule::new(50.0, 0.999), iterations).without_trace();
    let scalar_ips = (0..3)
        .map(|_| {
            let (ips, _) = time_run(&annealer, seed, || {
                SoftwareState::new(iq, Assignment::zeros(n))
            });
            ips
        })
        .fold(0.0f64, f64::max);

    // Bit-identity audit: replay every lane as an independent scalar
    // sweep-reference replica on its `replica_seed` stream.
    let mut streams: Vec<StdRng> = (0..LANES as u64)
        .map(|k| StdRng::seed_from_u64(replica_seed(seed, 0, k)))
        .collect();
    let initials: Vec<Assignment> = streams
        .iter_mut()
        .map(|rng| CopProblem::initial(iq, rng))
        .collect();
    let state = PackedSoftwareState::new(iq, &initials);
    let schedule = engine.schedule_for(&state);
    let bit_identical = streams.iter_mut().enumerate().all(|(k, rng)| {
        let scalar = run_replica_scalar(iq, initials[k].clone(), sweeps, &schedule, rng);
        scalar.best_energy.to_bits() == packed.best_energies[k].to_bits()
            && scalar.best_assignment == packed.best_assignments[k]
            && scalar.final_energy.to_bits() == packed.final_energies[k].to_bits()
    });

    let (nnz, avg_degree) = degree_stats(iq.objective());
    ReplicaRow {
        family,
        n,
        nnz,
        avg_degree,
        lanes: LANES,
        sweeps,
        scalar_ips,
        packed_ips,
        bit_identical,
    }
}

/// Builds the replica-throughput row for one named family at size `n`,
/// with the same instance-generation parameters as [`family_row`] (so
/// the gate's drift probe re-measures exactly what `hotpath_report`
/// committed).
///
/// # Panics
///
/// Panics on an unknown family tag.
pub fn replica_family_row(
    family: &str,
    n: usize,
    sweeps: usize,
    seed: u64,
    maxcut_density: f64,
    qkp_density: f64,
) -> ReplicaRow {
    match family {
        "maxcut" => {
            let g = MaxCut::random(n, maxcut_density, seed.wrapping_add(n as u64));
            let iq = CopProblem::to_inequality_qubo(&g).expect("max-cut encodes");
            replica_row("maxcut", &iq, sweeps, seed)
        }
        "spinglass" => {
            let sg =
                SpinGlass::random_binary(n.max(2), seed.wrapping_add(n as u64)).expect("n >= 2");
            let iq = CopProblem::to_inequality_qubo(&sg).expect("spin glass encodes");
            replica_row("spinglass", &iq, sweeps, seed)
        }
        "qkp" => {
            let inst = QkpGenerator::new(n, qkp_density).generate(seed);
            let iq = inst.to_inequality_qubo().expect("QKP encodes");
            replica_row("qkp", &iq, sweeps, seed)
        }
        other => panic!("unknown replica family {other:?}"),
    }
}

/// Builds the row for one named family at size `n`, with the same
/// generation parameters for every caller (so the gate's drift probe
/// re-measures exactly what `hotpath_report` committed).
///
/// # Panics
///
/// Panics on an unknown family tag.
pub fn family_row(
    family: &str,
    n: usize,
    iters_per_var: usize,
    seed: u64,
    maxcut_density: f64,
    qkp_density: f64,
) -> HotpathRow {
    match family {
        "maxcut" => {
            let g = MaxCut::random(n, maxcut_density, seed.wrapping_add(n as u64));
            let iq = CopProblem::to_inequality_qubo(&g).expect("max-cut encodes");
            software_row("maxcut", &iq, iters_per_var, seed)
        }
        "spinglass" => {
            let sg =
                SpinGlass::random_binary(n.max(2), seed.wrapping_add(n as u64)).expect("n >= 2");
            let iq = CopProblem::to_inequality_qubo(&sg).expect("spin glass encodes");
            software_row("spinglass", &iq, iters_per_var, seed)
        }
        "qkp" => {
            let inst = QkpGenerator::new(n, qkp_density).generate(seed);
            let iq = inst.to_inequality_qubo().expect("QKP encodes");
            software_row("qkp", &iq, iters_per_var, seed)
        }
        "qkp-dqubo" => penalty_row(n, iters_per_var, seed),
        other => panic!("unknown family {other:?}"),
    }
}

/// Renders the `BENCH_hotpath.json` (schema v3) document: the
/// dense-vs-local `rows` plus the packed-vs-scalar `replica_rows`.
///
/// Replica-row objects deliberately *lead* with the `"lanes"` key: the
/// string-level row extractors split documents on the `{ "family":`
/// marker, so leading with a different key keeps the two row kinds
/// unambiguous.
pub fn render_hotpath_json(
    rows: &[HotpathRow],
    replica_rows: &[ReplicaRow],
    iters_per_var: usize,
    meta: &ReportMeta,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{HOTPATH_SCHEMA}\",\n"));
    out.push_str("  \"bin\": \"hotpath_report\",\n");
    out.push_str(&format!("  {},\n", meta.render()));
    out.push_str("  \"units\": \"iterations_per_second\",\n");
    out.push_str(&format!("  \"iters_per_var\": {iters_per_var},\n"));
    out.push_str("  \"rows\": [\n");
    for (k, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"family\": \"{}\", \"state\": \"{}\", \"n\": {}, \"nnz\": {}, \
             \"avg_degree\": {:.2}, \"iterations\": {}, \"dense_iters_per_sec\": {:.1}, \
             \"local_iters_per_sec\": {:.1}, \"speedup\": {:.2}, \"bit_identical\": {} }}{}\n",
            r.family,
            r.state,
            r.n,
            r.nnz,
            r.avg_degree,
            r.iterations,
            r.dense_ips,
            r.local_ips,
            r.speedup(),
            r.bit_identical,
            if k + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"replica_rows\": [\n");
    for (k, r) in replica_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"lanes\": {}, \"family\": \"{}\", \"n\": {}, \"nnz\": {}, \
             \"avg_degree\": {:.2}, \"sweeps\": {}, \"scalar_iters_per_sec\": {:.1}, \
             \"packed_iters_per_sec\": {:.1}, \"replica_speedup\": {:.2}, \
             \"bit_identical\": {} }}{}\n",
            r.lanes,
            r.family,
            r.n,
            r.nnz,
            r.avg_degree,
            r.sweeps,
            r.scalar_ips,
            r.packed_ips,
            r.speedup(),
            r.bit_identical,
            if k + 1 < replica_rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{parse_hotpath_rows, parse_replica_rows, validate_hotpath_json};

    #[test]
    fn family_rows_time_and_stay_bit_identical() {
        for family in ["maxcut", "spinglass", "qkp", "qkp-dqubo"] {
            let row = family_row(family, 24, 4, 1, 0.3, 0.25);
            assert!(row.dense_ips > 0.0 && row.local_ips > 0.0, "{family}");
            assert!(row.bit_identical, "{family} trajectories diverged");
        }
    }

    #[test]
    fn replica_rows_time_and_stay_bit_identical() {
        for family in ["maxcut", "spinglass", "qkp"] {
            let row = replica_family_row(family, 20, 8, 1, 0.3, 0.25);
            assert_eq!(row.lanes, LANES, "{family}");
            assert!(row.scalar_ips > 0.0 && row.packed_ips > 0.0, "{family}");
            assert!(
                row.bit_identical,
                "{family}: packed lanes diverged from scalar replica_seed twins"
            );
        }
    }

    #[test]
    fn rendered_v3_report_validates_and_extracts_both_row_kinds() {
        let rows = vec![family_row("maxcut", 16, 3, 1, 0.3, 0.25)];
        let replica_rows = vec![replica_family_row("maxcut", 16, 4, 1, 0.3, 0.25)];
        let doc = render_hotpath_json(&rows, &replica_rows, 3, &ReportMeta::unknown());
        validate_hotpath_json(&doc).expect("v3 document validates");
        let extracted = parse_hotpath_rows(&doc).expect("rows extract");
        assert_eq!(extracted.len(), 1);
        assert_eq!(extracted[0].0, "maxcut");
        assert_eq!(extracted[0].1, 16);
        let replicas = parse_replica_rows(&doc).expect("replica rows extract");
        assert_eq!(replicas.len(), 1);
        assert_eq!(replicas[0].0, "maxcut");
        assert_eq!(replicas[0].2, 4, "sweeps round-trip through the document");
        assert!(replicas[0].3 > 0.0);
    }
}
