//! Declarative study recipes: the problem-family × size × engine grid
//! a benchmark study runs, as a small line-based text format with a
//! hand-rolled parser (the harness stays dependency-free).
//!
//! # Grammar
//!
//! One directive per line; `#` starts a comment; blank lines ignored.
//!
//! ```text
//! study <name>                      # required, once
//! seed <u64>                        # required, once
//! replicas <count>                  # required, once
//! sweeps <count>                    # required, once
//! engines <tag>[,<tag>...]          # required, once; software|hycim|bank|dqubo
//! problem <family> sizes=<n>[,<n>...] [param=value ...]   # one or more
//! ```
//!
//! Families and their parameters: `qkp density=<pct>`,
//! `maxcut density=<pct>`, `coloring colors=<k>`, `binpack bins=<k>`,
//! `mkp dims=<k>`, and parameter-free `knapsack`, `spinglass`, `tsp`.
//! Omitted parameters take family defaults, so
//! `parse(format(r)) == r` holds for every valid recipe (the
//! round-trip law the property suite pins).
//!
//! Seeding is **instance-keyed, not positional**: every instance's
//! seeds derive from its [`instance key`](FamilySpec::instance_key)
//! and the study seed, so a sub-recipe (the CI gate) reproduces the
//! exact cells of a superset recipe bit-identically.

use std::fmt;

use hycim_core::replica_seed;
// The backend vocabulary moved to `hycim-core` (the wire protocol
// needs it without depending on the harness); re-exported here so
// recipe users keep one import path.
pub use hycim_core::EngineKind;

/// A problem family plus its family-specific parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Quadratic knapsack (`density` = pair-profit density percent).
    Qkp {
        /// Pair-profit density in percent (1–100).
        density_pct: u32,
    },
    /// Linear 0/1 knapsack.
    Knapsack,
    /// Max-cut (`density` = edge density percent).
    MaxCut {
        /// Edge density in percent (1–100).
        density_pct: u32,
    },
    /// ±1-coupling spin glass.
    SpinGlass,
    /// Euclidean travelling salesman (size = cities; dim = n²).
    Tsp,
    /// Graph coloring (`colors` = palette size).
    Coloring {
        /// Number of available colors (≥ 2).
        colors: u32,
    },
    /// Bin packing (`bins` = bin count).
    BinPack {
        /// Number of bins (≥ 1).
        bins: u32,
    },
    /// Multi-dimensional knapsack (`dims` = constraint dimensions).
    Mkp {
        /// Number of knapsack constraint dimensions (≥ 1).
        dims: u32,
    },
}

impl Family {
    /// The recipe/JSON tag of this family.
    pub fn tag(&self) -> &'static str {
        match self {
            Family::Qkp { .. } => "qkp",
            Family::Knapsack => "knapsack",
            Family::MaxCut { .. } => "maxcut",
            Family::SpinGlass => "spinglass",
            Family::Tsp => "tsp",
            Family::Coloring { .. } => "coloring",
            Family::BinPack { .. } => "binpack",
            Family::Mkp { .. } => "mkp",
        }
    }

    /// Canonical `param=value` suffix (empty for parameter-free
    /// families).
    fn params(&self) -> String {
        match self {
            Family::Qkp { density_pct } | Family::MaxCut { density_pct } => {
                format!(" density={density_pct}")
            }
            Family::Coloring { colors } => format!(" colors={colors}"),
            Family::BinPack { bins } => format!(" bins={bins}"),
            Family::Mkp { dims } => format!(" dims={dims}"),
            Family::Knapsack | Family::SpinGlass | Family::Tsp => String::new(),
        }
    }
}

/// One `problem` line of a recipe: a family swept over sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySpec {
    /// The family and its parameters.
    pub family: Family,
    /// Instance sizes to generate (items / vertices / spins / cities).
    pub sizes: Vec<usize>,
}

impl FamilySpec {
    /// Canonical, position-independent key of one (family, params, n)
    /// instance — the JSON `problem` field and the root of all seed
    /// derivation, so the same instance key always means the same
    /// instance and the same solve seeds in any recipe.
    pub fn instance_key(&self, n: usize) -> String {
        match self.family {
            Family::Qkp { density_pct } => format!("qkp-d{density_pct}-n{n}"),
            Family::Knapsack => format!("knapsack-n{n}"),
            Family::MaxCut { density_pct } => format!("maxcut-d{density_pct}-n{n}"),
            Family::SpinGlass => format!("spinglass-n{n}"),
            Family::Tsp => format!("tsp-n{n}"),
            Family::Coloring { colors } => format!("coloring-c{colors}-n{n}"),
            Family::BinPack { bins } => format!("binpack-b{bins}-n{n}"),
            Family::Mkp { dims } => format!("mkp-m{dims}-n{n}"),
        }
    }
}

/// A parse or validation error, pointing at the offending line
/// (1-based; line 0 = a document-level problem such as a missing
/// directive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecipeError {
    /// 1-based line number, or 0 for document-level errors.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for RecipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "recipe: {}", self.msg)
        } else {
            write!(f, "recipe line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for RecipeError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, RecipeError> {
    Err(RecipeError {
        line,
        msg: msg.into(),
    })
}

/// A declarative benchmark study: the full replica × problem × engine
/// grid plus its iteration budget and seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyRecipe {
    /// Study name (one `[a-z0-9_-]+` token).
    pub name: String,
    /// Study root seed every instance/solve seed derives from.
    pub seed: u64,
    /// Monte-Carlo replicas per (problem, engine) cell.
    pub replicas: usize,
    /// Annealing sweeps per solve (iterations = sweeps × dim).
    pub sweeps: usize,
    /// Engine columns, in recipe order (no duplicates).
    pub engines: Vec<EngineKind>,
    /// Problem rows, in recipe order.
    pub problems: Vec<FamilySpec>,
}

impl StudyRecipe {
    /// Built-in preset names, canonical order.
    pub const PRESETS: [&'static str; 3] = ["micro", "gate", "default"];

    /// Looks up a built-in preset recipe.
    ///
    /// * `"micro"` — seconds-scale smoke matrix for CI and the
    ///   determinism tests (three backends, four tiny problems).
    /// * `"gate"` — the regression-gate matrix: a strict subset of
    ///   `"default"` (same seed/replicas/sweeps/engines), so its cells
    ///   are bit-identical to the committed `BENCH_study.json`.
    /// * `"default"` — the full committed study: all four backends
    ///   over eight problem families.
    pub fn preset(name: &str) -> Option<StudyRecipe> {
        let text = match name {
            "micro" => {
                "study micro\nseed 3\nreplicas 3\nsweeps 60\n\
                 engines software,hycim,bank\n\
                 problem qkp sizes=10 density=50\n\
                 problem maxcut sizes=8 density=50\n\
                 problem binpack sizes=5 bins=2\n\
                 problem mkp sizes=6 dims=2\n"
            }
            "gate" => {
                "study gate\nseed 7\nreplicas 6\nsweeps 200\n\
                 engines software,hycim,bank,dqubo\n\
                 problem qkp sizes=14 density=50\n\
                 problem maxcut sizes=12 density=50\n\
                 problem spinglass sizes=10\n\
                 problem binpack sizes=6 bins=2\n\
                 problem mkp sizes=8 dims=2\n"
            }
            "default" => {
                "study default\nseed 7\nreplicas 6\nsweeps 200\n\
                 engines software,hycim,bank,dqubo\n\
                 problem qkp sizes=14,20 density=50\n\
                 problem knapsack sizes=16\n\
                 problem maxcut sizes=12,20 density=50\n\
                 problem spinglass sizes=10,14\n\
                 problem tsp sizes=5\n\
                 problem coloring sizes=8 colors=3\n\
                 problem binpack sizes=6,8 bins=2\n\
                 problem mkp sizes=8,12 dims=2\n"
            }
            _ => return None,
        };
        Some(Self::parse(text).expect("presets are valid recipes"))
    }

    /// Parses the line-based recipe format. Errors carry the 1-based
    /// line number of the first violation.
    ///
    /// # Errors
    ///
    /// Returns a [`RecipeError`] on the first malformed, duplicate,
    /// unknown, or out-of-range directive, or on missing required
    /// directives (line 0).
    pub fn parse(text: &str) -> Result<StudyRecipe, RecipeError> {
        let mut name: Option<String> = None;
        let mut seed: Option<u64> = None;
        let mut replicas: Option<usize> = None;
        let mut sweeps: Option<usize> = None;
        let mut engines: Option<Vec<EngineKind>> = None;
        let mut problems: Vec<FamilySpec> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (directive, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            match directive {
                "study" => {
                    if name.is_some() {
                        return err(lineno, "duplicate 'study' directive");
                    }
                    if rest.is_empty() || !rest.chars().all(is_name_char) {
                        return err(
                            lineno,
                            format!("study name {rest:?} must be one [a-z0-9_-]+ token"),
                        );
                    }
                    name = Some(rest.to_string());
                }
                "seed" => {
                    if seed.is_some() {
                        return err(lineno, "duplicate 'seed' directive");
                    }
                    seed = Some(parse_num::<u64>(lineno, "seed", rest)?);
                }
                "replicas" => {
                    if replicas.is_some() {
                        return err(lineno, "duplicate 'replicas' directive");
                    }
                    let n = parse_num::<usize>(lineno, "replicas", rest)?;
                    if n == 0 {
                        return err(lineno, "replicas must be at least 1");
                    }
                    replicas = Some(n);
                }
                "sweeps" => {
                    if sweeps.is_some() {
                        return err(lineno, "duplicate 'sweeps' directive");
                    }
                    let n = parse_num::<usize>(lineno, "sweeps", rest)?;
                    if n == 0 {
                        return err(lineno, "sweeps must be at least 1");
                    }
                    sweeps = Some(n);
                }
                "engines" => {
                    if engines.is_some() {
                        return err(lineno, "duplicate 'engines' directive");
                    }
                    let mut list = Vec::new();
                    for tag in rest.split(',').map(str::trim) {
                        let Some(kind) = EngineKind::from_tag(tag) else {
                            return err(
                                lineno,
                                format!(
                                    "unknown engine {tag:?} (expected one of \
                                     software, hycim, bank, dqubo, packed)"
                                ),
                            );
                        };
                        if list.contains(&kind) {
                            return err(lineno, format!("engine {tag:?} listed twice"));
                        }
                        list.push(kind);
                    }
                    engines = Some(list);
                }
                "problem" => problems.push(parse_problem(lineno, rest)?),
                other => {
                    return err(
                        lineno,
                        format!(
                            "unknown directive {other:?} (expected study, seed, \
                             replicas, sweeps, engines, or problem)"
                        ),
                    )
                }
            }
        }

        let Some(name) = name else {
            return err(0, "missing 'study' directive");
        };
        let Some(seed) = seed else {
            return err(0, "missing 'seed' directive");
        };
        let Some(replicas) = replicas else {
            return err(0, "missing 'replicas' directive");
        };
        let Some(sweeps) = sweeps else {
            return err(0, "missing 'sweeps' directive");
        };
        let Some(engines) = engines else {
            return err(0, "missing 'engines' directive");
        };
        if problems.is_empty() {
            return err(0, "recipe lists no 'problem' lines");
        }
        Ok(StudyRecipe {
            name,
            seed,
            replicas,
            sweeps,
            engines,
            problems,
        })
    }

    /// All (spec, size) instances of the recipe with their canonical
    /// keys, in recipe order.
    pub fn instances(&self) -> Vec<(FamilySpec, usize, String)> {
        self.problems
            .iter()
            .flat_map(|spec| {
                spec.sizes
                    .iter()
                    .map(|&n| (spec.clone(), n, spec.instance_key(n)))
            })
            .collect()
    }

    /// Seed the instance *generator* uses for one instance key:
    /// derived from the study seed and the key only, never from the
    /// instance's position in the recipe.
    pub fn instance_seed(&self, key: &str) -> u64 {
        replica_seed(self.seed ^ fnv1a(key), 0, 0)
    }

    /// Root seed of one instance's solve batch (fed to
    /// `BatchRunner::run_telemetry`, which derives per-replica seeds).
    pub fn solve_seed(&self, key: &str) -> u64 {
        replica_seed(self.seed ^ fnv1a(key), 1, 0)
    }

    /// Seed used to fabricate the hardware (device-variability sample)
    /// for one instance's HyCiM/bank engines.
    pub fn hardware_seed(&self, key: &str) -> u64 {
        replica_seed(self.seed ^ fnv1a(key), 2, 0)
    }
}

impl fmt::Display for StudyRecipe {
    /// The canonical rendering `parse` inverts: directives in fixed
    /// order, family parameters always spelled out.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "study {}", self.name)?;
        writeln!(f, "seed {}", self.seed)?;
        writeln!(f, "replicas {}", self.replicas)?;
        writeln!(f, "sweeps {}", self.sweeps)?;
        let tags: Vec<&str> = self.engines.iter().map(|e| e.tag()).collect();
        writeln!(f, "engines {}", tags.join(","))?;
        for spec in &self.problems {
            let sizes: Vec<String> = spec.sizes.iter().map(|n| n.to_string()).collect();
            writeln!(
                f,
                "problem {} sizes={}{}",
                spec.family.tag(),
                sizes.join(","),
                spec.family.params()
            )?;
        }
        Ok(())
    }
}

fn is_name_char(c: char) -> bool {
    c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_'
}

fn parse_num<T: std::str::FromStr>(line: usize, what: &str, s: &str) -> Result<T, RecipeError> {
    s.parse().map_err(|_| RecipeError {
        line,
        msg: format!("{what} expects an integer, got {s:?}"),
    })
}

/// FNV-1a over the instance key: a stable, dependency-free string
/// hash (the derived value is then mixed through `replica_seed`).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn parse_problem(lineno: usize, rest: &str) -> Result<FamilySpec, RecipeError> {
    let mut tokens = rest.split_whitespace();
    let Some(family_tag) = tokens.next() else {
        return err(lineno, "problem line names no family");
    };
    let mut sizes: Option<Vec<usize>> = None;
    let mut density: Option<u32> = None;
    let mut colors: Option<u32> = None;
    let mut bins: Option<u32> = None;
    let mut dims: Option<u32> = None;
    for token in tokens {
        let Some((key, value)) = token.split_once('=') else {
            return err(lineno, format!("expected key=value, got {token:?}"));
        };
        match key {
            "sizes" => {
                if sizes.is_some() {
                    return err(lineno, "duplicate sizes parameter");
                }
                let mut list = Vec::new();
                for part in value.split(',') {
                    list.push(parse_num::<usize>(lineno, "sizes", part)?);
                }
                sizes = Some(list);
            }
            "density" => set_param(lineno, "density", &mut density, value)?,
            "colors" => set_param(lineno, "colors", &mut colors, value)?,
            "bins" => set_param(lineno, "bins", &mut bins, value)?,
            "dims" => set_param(lineno, "dims", &mut dims, value)?,
            other => return err(lineno, format!("unknown parameter {other:?}")),
        }
    }

    // Family defaults, then reject parameters foreign to the family.
    let family = match family_tag {
        "qkp" => Family::Qkp {
            density_pct: density.take().unwrap_or(50),
        },
        "knapsack" => Family::Knapsack,
        "maxcut" => Family::MaxCut {
            density_pct: density.take().unwrap_or(50),
        },
        "spinglass" => Family::SpinGlass,
        "tsp" => Family::Tsp,
        "coloring" => Family::Coloring {
            colors: colors.take().unwrap_or(3),
        },
        "binpack" => Family::BinPack {
            bins: bins.take().unwrap_or(2),
        },
        "mkp" => Family::Mkp {
            dims: dims.take().unwrap_or(2),
        },
        other => return err(lineno, format!("unknown problem family {other:?}")),
    };
    for (param, present) in [
        ("density", density.is_some()),
        ("colors", colors.is_some()),
        ("bins", bins.is_some()),
        ("dims", dims.is_some()),
    ] {
        if present {
            return err(
                lineno,
                format!("parameter {param:?} does not apply to family {family_tag:?}"),
            );
        }
    }

    let Some(sizes) = sizes else {
        return err(lineno, "problem line missing sizes=");
    };
    if sizes.is_empty() {
        return err(lineno, "sizes= lists no sizes");
    }
    let min_n = match family {
        Family::Tsp => 3,
        _ => 2,
    };
    for &n in &sizes {
        if n < min_n || n > 4096 {
            return err(
                lineno,
                format!("size {n} out of range for {family_tag} (min {min_n}, max 4096)"),
            );
        }
    }
    match family {
        Family::Qkp { density_pct } | Family::MaxCut { density_pct }
            if !(1..=100).contains(&density_pct) =>
        {
            return err(lineno, format!("density {density_pct} not in 1..=100"));
        }
        Family::Coloring { colors } if !(2..=16).contains(&colors) => {
            return err(lineno, format!("colors {colors} not in 2..=16"));
        }
        Family::BinPack { bins } if !(1..=16).contains(&bins) => {
            return err(lineno, format!("bins {bins} not in 1..=16"));
        }
        Family::Mkp { dims } if !(1..=8).contains(&dims) => {
            return err(lineno, format!("dims {dims} not in 1..=8"));
        }
        _ => {}
    }
    Ok(FamilySpec { family, sizes })
}

fn set_param(
    lineno: usize,
    what: &str,
    slot: &mut Option<u32>,
    value: &str,
) -> Result<(), RecipeError> {
    if slot.is_some() {
        return err(lineno, format!("duplicate {what} parameter"));
    }
    *slot = Some(parse_num::<u32>(lineno, what, value)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_round_trip() {
        for name in StudyRecipe::PRESETS {
            let recipe = StudyRecipe::preset(name).expect("preset exists");
            assert_eq!(recipe.name, name);
            let rendered = recipe.to_string();
            let reparsed = StudyRecipe::parse(&rendered).expect("canonical form parses");
            assert_eq!(recipe, reparsed, "{name} round-trips");
            // Idempotent formatting.
            assert_eq!(rendered, reparsed.to_string());
        }
        assert!(StudyRecipe::preset("nope").is_none());
    }

    #[test]
    fn gate_is_a_subset_of_default() {
        let gate = StudyRecipe::preset("gate").unwrap();
        let default = StudyRecipe::preset("default").unwrap();
        // Identical study-level knobs: the seeds feeding every cell.
        assert_eq!(gate.seed, default.seed);
        assert_eq!(gate.replicas, default.replicas);
        assert_eq!(gate.sweeps, default.sweeps);
        assert_eq!(gate.engines, default.engines);
        let default_keys: Vec<String> =
            default.instances().into_iter().map(|(_, _, k)| k).collect();
        for (_, _, key) in gate.instances() {
            assert!(default_keys.contains(&key), "{key} missing from default");
            // Instance-keyed seeding: identical derived seeds.
            assert_eq!(gate.instance_seed(&key), default.instance_seed(&key));
            assert_eq!(gate.solve_seed(&key), default.solve_seed(&key));
            assert_eq!(gate.hardware_seed(&key), default.hardware_seed(&key));
        }
        assert!(gate.instances().len() < default_keys.len());
    }

    #[test]
    fn default_preset_covers_at_least_four_families() {
        let recipe = StudyRecipe::preset("default").unwrap();
        let mut tags: Vec<&str> = recipe.problems.iter().map(|p| p.family.tag()).collect();
        tags.dedup();
        assert!(tags.len() >= 4, "only {} families", tags.len());
        assert_eq!(recipe.engines.len(), 4, "all backends ranked");
    }

    #[test]
    fn defaults_fill_in_but_canonical_form_is_explicit() {
        let recipe = StudyRecipe::parse(
            "study t\nseed 1\nreplicas 2\nsweeps 10\nengines software\n\
             problem qkp sizes=5\n",
        )
        .unwrap();
        assert_eq!(
            recipe.problems[0].family,
            Family::Qkp { density_pct: 50 },
            "density defaults to 50"
        );
        assert!(recipe
            .to_string()
            .contains("problem qkp sizes=5 density=50"));
    }

    #[test]
    fn comments_blank_lines_and_order_are_tolerated() {
        let recipe = StudyRecipe::parse(
            "# a comment\n\nproblem tsp sizes=4\nengines hycim,software\n\
             sweeps 10\nreplicas 2\nseed 1\nstudy out-of-order\n",
        )
        .unwrap();
        assert_eq!(recipe.name, "out-of-order");
        assert_eq!(
            recipe.engines,
            vec![EngineKind::HyCim, EngineKind::Software]
        );
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let cases: [(&str, usize, &str); 10] = [
            ("study a\nstudy b\n", 2, "duplicate 'study'"),
            ("study a\nseed x\n", 2, "expects an integer"),
            ("study a\nengines warp\n", 2, "unknown engine"),
            ("study a\nengines hycim,hycim\n", 2, "listed twice"),
            ("bogus 3\n", 1, "unknown directive"),
            ("problem qkp\n", 1, "missing sizes="),
            ("problem qkp sizes=1\n", 1, "out of range"),
            ("problem qkp sizes=5 colors=3\n", 1, "does not apply"),
            ("problem warp sizes=5\n", 1, "unknown problem family"),
            ("replicas 0\n", 1, "at least 1"),
        ];
        for (text, line, needle) in cases {
            let e = StudyRecipe::parse(text).expect_err(text);
            assert_eq!(e.line, line, "{text:?} -> {e}");
            assert!(e.msg.contains(needle), "{text:?} -> {e}");
        }
        // Missing directives are document-level (line 0).
        let e = StudyRecipe::parse("study a\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.to_string().starts_with("recipe: missing"));
    }

    #[test]
    fn instance_keys_are_param_qualified_and_seeds_stable() {
        let spec = FamilySpec {
            family: Family::Qkp { density_pct: 25 },
            sizes: vec![10],
        };
        assert_eq!(spec.instance_key(10), "qkp-d25-n10");
        let recipe = StudyRecipe::parse(
            "study s\nseed 9\nreplicas 1\nsweeps 1\nengines software\n\
             problem qkp sizes=10 density=25\n",
        )
        .unwrap();
        // Distinct roles draw distinct seeds from the same key.
        let key = "qkp-d25-n10";
        let seeds = [
            recipe.instance_seed(key),
            recipe.solve_seed(key),
            recipe.hardware_seed(key),
        ];
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
        // And different keys draw different seeds.
        assert_ne!(recipe.instance_seed("qkp-d25-n12"), seeds[0]);
    }
}
