//! Study statistics: per-(problem, engine) cell summaries and the
//! kurobako-style cross-problem engine rankings (success rates,
//! Borda points, best/worst counts) the `study_report` bin emits.

use crate::mean;

/// Aggregate of one (problem, engine) cell: `replicas` solves scored
/// against the problem's reference objective. Every field except
/// means-of-wall-clock (deliberately absent) is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Engine backend tag (`"software"`, `"hycim"`, `"bank"`,
    /// `"dqubo"`).
    pub engine: String,
    /// Fraction of replicas within 5% of the reference and feasible
    /// (the paper's success criterion), in `[0, 1]`.
    pub success_rate: f64,
    /// Fraction of replicas ending feasible, in `[0, 1]`.
    pub feasible_rate: f64,
    /// Best (minimum) objective over the replicas; `+inf` when no
    /// replica produced a finite objective.
    pub best_objective: f64,
    /// Mean objective over the replicas (non-finite when any replica
    /// ended at `+inf`; rendered as `null` in JSON).
    pub mean_objective: f64,
    /// Mean annealing iterations until each replica first reached its
    /// best energy — the deterministic stand-in for time-to-target.
    pub mean_iters_to_best: f64,
    /// Total annealing iterations the cell executed.
    pub iterations: u64,
}

/// All engines' summaries on one problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemSummary {
    /// Canonical instance key (`"qkp-d50-n14"`, …).
    pub problem: String,
    /// Family tag (`"qkp"`, `"maxcut"`, …).
    pub family: String,
    /// Instance size parameter (items / vertices / cities).
    pub n: usize,
    /// Encoded QUBO dimension.
    pub dim: usize,
    /// Reference objective the cells are scored against (problem
    /// reference folded with the best feasible solve of any engine on
    /// this problem).
    pub reference: f64,
    /// One summary per engine, in recipe engine order.
    pub cells: Vec<CellSummary>,
}

/// Cross-problem aggregate of one engine: the ranking row.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRanking {
    /// Engine backend tag.
    pub engine: String,
    /// Problems this engine was ranked on.
    pub problems: usize,
    /// Mean per-problem success rate, in `[0, 1]`.
    pub mean_success_rate: f64,
    /// Borda points: on each problem an engine ranked `r` of `k`
    /// engines scores `k − r` points; summed over problems.
    pub borda: usize,
    /// Problems where this engine ranked first (ties share first).
    pub best_count: usize,
    /// Problems where this engine ranked last (ties share last; when
    /// every engine ties, all are both best and worst).
    pub worst_count: usize,
}

/// Competition ranks (1-based) of the cells on one problem. A cell
/// outranks another by higher success rate, then lower best objective,
/// then lower mean objective; full ties share a rank.
pub fn rank_cells(cells: &[CellSummary]) -> Vec<usize> {
    fn beats(a: &CellSummary, b: &CellSummary) -> bool {
        if a.success_rate != b.success_rate {
            return a.success_rate > b.success_rate;
        }
        match a.best_objective.total_cmp(&b.best_objective) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                a.mean_objective.total_cmp(&b.mean_objective) == std::cmp::Ordering::Less
            }
        }
    }
    cells
        .iter()
        .map(|c| 1 + cells.iter().filter(|o| beats(o, c)).count())
        .collect()
}

/// Folds per-problem summaries into one ranking row per engine,
/// ordered best-first (Borda, then best-count, then mean success rate,
/// then engine tag — all deterministic).
pub fn rank_engines(problems: &[ProblemSummary]) -> Vec<EngineRanking> {
    let mut order: Vec<String> = Vec::new();
    for p in problems {
        for c in &p.cells {
            if !order.contains(&c.engine) {
                order.push(c.engine.clone());
            }
        }
    }
    let mut rankings: Vec<EngineRanking> = order
        .into_iter()
        .map(|engine| EngineRanking {
            engine,
            problems: 0,
            mean_success_rate: 0.0,
            borda: 0,
            best_count: 0,
            worst_count: 0,
        })
        .collect();
    for p in problems {
        let ranks = rank_cells(&p.cells);
        let k = p.cells.len();
        let last = ranks.iter().copied().max().unwrap_or(1);
        for (cell, rank) in p.cells.iter().zip(&ranks) {
            let row = rankings
                .iter_mut()
                .find(|r| r.engine == cell.engine)
                .expect("engine registered above");
            row.problems += 1;
            row.mean_success_rate += cell.success_rate;
            row.borda += k - rank;
            if *rank == 1 {
                row.best_count += 1;
            }
            if *rank == last {
                row.worst_count += 1;
            }
        }
    }
    for row in &mut rankings {
        if row.problems > 0 {
            row.mean_success_rate /= row.problems as f64;
        }
    }
    rankings.sort_by(|a, b| {
        b.borda
            .cmp(&a.borda)
            .then(b.best_count.cmp(&a.best_count))
            .then(b.mean_success_rate.total_cmp(&a.mean_success_rate))
            .then(a.engine.cmp(&b.engine))
    });
    rankings
}

/// Builds one cell summary from per-replica scores.
///
/// `scores` is one `(objective, feasible, success, iters_to_best,
/// iterations)` tuple per replica, in replica order (so the means are
/// order-stable and bit-identical across thread counts).
pub fn summarize_cell(engine: &str, scores: &[(f64, bool, bool, usize, usize)]) -> CellSummary {
    let replicas = scores.len().max(1) as f64;
    let objectives: Vec<f64> = scores.iter().map(|s| s.0).collect();
    CellSummary {
        engine: engine.to_string(),
        success_rate: scores.iter().filter(|s| s.2).count() as f64 / replicas,
        feasible_rate: scores.iter().filter(|s| s.1).count() as f64 / replicas,
        best_objective: objectives.iter().copied().fold(f64::INFINITY, f64::min),
        mean_objective: mean(&objectives),
        mean_iters_to_best: mean(&scores.iter().map(|s| s.3 as f64).collect::<Vec<_>>()),
        iterations: scores.iter().map(|s| s.4 as u64).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(engine: &str, success: f64, best: f64, mean_obj: f64) -> CellSummary {
        CellSummary {
            engine: engine.into(),
            success_rate: success,
            feasible_rate: 1.0,
            best_objective: best,
            mean_objective: mean_obj,
            mean_iters_to_best: 10.0,
            iterations: 100,
        }
    }

    fn problem(name: &str, cells: Vec<CellSummary>) -> ProblemSummary {
        ProblemSummary {
            problem: name.into(),
            family: "qkp".into(),
            n: 10,
            dim: 10,
            reference: -1.0,
            cells,
        }
    }

    /// The hand-computed 3-engine × 3-problem fixture: every rank,
    /// Borda point, and best/worst count derived on paper first.
    #[test]
    fn hand_computed_three_by_three_table() {
        let problems = vec![
            // P1: A wins on success; B and C tie on success, B's best
            // objective breaks the tie.
            problem(
                "p1",
                vec![
                    cell("software", 1.0, -10.0, -9.0),
                    cell("hycim", 0.5, -10.0, -9.0),
                    cell("bank", 0.5, -9.0, -9.0),
                ],
            ),
            // P2: all succeed; best objective orders B first, then the
            // mean objective splits A from C.
            problem(
                "p2",
                vec![
                    cell("software", 1.0, -5.0, -5.0),
                    cell("hycim", 1.0, -6.0, -5.0),
                    cell("bank", 1.0, -5.0, -4.0),
                ],
            ),
            // P3: C alone succeeds sometimes; A and B tie fully and
            // share both rank 2 and "worst".
            problem(
                "p3",
                vec![
                    cell("software", 0.0, -1.0, -1.0),
                    cell("hycim", 0.0, -1.0, -1.0),
                    cell("bank", 0.2, -1.0, -1.0),
                ],
            ),
        ];

        assert_eq!(rank_cells(&problems[0].cells), vec![1, 2, 3]);
        assert_eq!(rank_cells(&problems[1].cells), vec![2, 1, 3]);
        assert_eq!(rank_cells(&problems[2].cells), vec![2, 2, 1]);

        let rankings = rank_engines(&problems);
        assert_eq!(rankings.len(), 3);
        // Borda = k − competition rank, so P3's shared rank 2 pays
        // 1 point to each tied engine:
        // software: Borda 2+1+1 = 4, best P1, worst P3(shared).
        // hycim:    Borda 1+2+1 = 4, best P2, worst P3(shared).
        // bank:     Borda 0+0+2 = 2, best P3, worst P1 and P2.
        // Borda ties between software and hycim break on best-count
        // (tied at 1) then mean success (2/3 vs 1/2).
        let by_name = |tag: &str| rankings.iter().find(|r| r.engine == tag).unwrap();
        let (sw, hy, bk) = (by_name("software"), by_name("hycim"), by_name("bank"));
        assert_eq!((sw.borda, sw.best_count, sw.worst_count), (4, 1, 1));
        assert_eq!((hy.borda, hy.best_count, hy.worst_count), (4, 1, 1));
        assert_eq!((bk.borda, bk.best_count, bk.worst_count), (2, 1, 2));
        assert!((sw.mean_success_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((hy.mean_success_rate - 0.5).abs() < 1e-12);
        assert!((bk.mean_success_rate - 1.7 / 3.0).abs() < 1e-12);
        let order: Vec<&str> = rankings.iter().map(|r| r.engine.as_str()).collect();
        assert_eq!(order, vec!["software", "hycim", "bank"]);
        assert!(rankings.iter().all(|r| r.problems == 3));
    }

    #[test]
    fn full_tie_makes_everyone_best_and_worst() {
        let p = problem(
            "tied",
            vec![cell("a", 1.0, -2.0, -2.0), cell("b", 1.0, -2.0, -2.0)],
        );
        assert_eq!(rank_cells(&p.cells), vec![1, 1]);
        let rankings = rank_engines(&[p]);
        for r in &rankings {
            assert_eq!((r.borda, r.best_count, r.worst_count), (1, 1, 1));
        }
    }

    #[test]
    fn infinite_objectives_rank_last() {
        let cells = vec![
            cell("finite", 0.0, -3.0, -3.0),
            cell("stuck", 0.0, f64::INFINITY, f64::INFINITY),
        ];
        assert_eq!(rank_cells(&cells), vec![1, 2]);
    }

    #[test]
    fn summarize_cell_aggregates_in_replica_order() {
        let scores = [
            (-10.0, true, true, 40, 100),
            (-8.0, true, false, 90, 100),
            (f64::INFINITY, false, false, 0, 100),
        ];
        let c = summarize_cell("hycim", &scores);
        assert!((c.success_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.feasible_rate - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.best_objective, -10.0);
        assert!(c.mean_objective.is_infinite());
        assert!((c.mean_iters_to_best - 130.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.iterations, 300);
    }
}
