//! The distributed study runner: the same replica × problem × engine
//! grid as [`StudyRunner`](crate::StudyRunner), executed by sharding
//! every cell's replica column across TCP workers through a
//! [`Coordinator`] and merging the results.
//!
//! Determinism contract: instances come from the exact construction
//! path the local runner uses (`build_instance`), every shard
//! carries its pre-derived solve seeds plus the instance-keyed
//! hardware seed, and scoring delegates to the same formulas
//! ([`WireSolution::objective_success`], `summarize_cell`). A
//! distributed run therefore renders a `BENCH_study.json` document
//! **byte-identical** to a local single-thread run of the same recipe
//! — the pin of the `distributed_study` integration tests and the
//! `shard_demo` binary.

use std::time::Instant;

use hycim_net::{shard_replica_column, Coordinator, JobSpec, WireSolution};

use crate::recipe::StudyRecipe;
use crate::stats::{rank_engines, summarize_cell, ProblemSummary};
use crate::study::{build_instance, StudyResult};

/// Executes [`StudyRecipe`]s by sharding every cell over wire workers.
#[derive(Debug, Clone)]
pub struct DistributedStudyRunner {
    shards: usize,
    coordinator: Coordinator,
}

impl DistributedStudyRunner {
    /// A runner dispatching to the given worker addresses, with one
    /// shard per worker by default and a default [`Coordinator`]
    /// (local fallback and seeded backoff on).
    pub fn new(addrs: Vec<String>) -> Self {
        let shards = addrs.len().max(1);
        Self {
            shards,
            coordinator: Coordinator::new(addrs),
        }
    }

    /// Overrides how many shards each replica column is split into
    /// (the merged result is bit-identical for any shard count — only
    /// dispatch granularity changes).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Replaces the dispatching [`Coordinator`] wholesale — the hook
    /// for resilience knobs (timeouts, probe schedules, backoff,
    /// strict no-fallback mode) and for the chaos tests, which route
    /// a study through fault-injection proxies. The coordinator's own
    /// address list is used; the one given to [`new`](Self::new) is
    /// superseded.
    pub fn with_coordinator(mut self, coordinator: Coordinator) -> Self {
        self.coordinator = coordinator;
        self
    }

    /// Runs the full grid of a recipe over the workers.
    ///
    /// # Errors
    ///
    /// Returns a message naming the instance and engine on the first
    /// cell that cannot be constructed, dispatched, or merged
    /// (exhausted retries surface here as the coordinator's typed
    /// error, stringified with its cell context).
    pub fn run(&self, recipe: &StudyRecipe) -> Result<StudyResult, String> {
        let started = Instant::now();
        let coordinator = &self.coordinator;
        let mut problems = Vec::new();
        let mut total_iterations = 0u64;
        for (spec, n, key) in recipe.instances() {
            let instance = build_instance(&spec, n, &key, recipe)?;
            let mut batches = Vec::new();
            for &kind in &recipe.engines {
                let base = JobSpec {
                    family: instance.family_tag().to_string(),
                    problem: instance.to_wire(),
                    engine: kind.tag().to_string(),
                    sweeps: recipe.sweeps as u64,
                    hardware_seed: recipe.hardware_seed(&key),
                    record_trace: true,
                    seeds: Vec::new(),
                };
                let (total, jobs) = shard_replica_column(
                    &base,
                    recipe.replicas,
                    recipe.solve_seed(&key),
                    0,
                    self.shards,
                );
                let merged = coordinator
                    .run(total, &jobs)
                    .map_err(|e| format!("{key} on {}: {e}", kind.tag()))?;
                batches.push((kind, merged));
            }

            // Problem-local reference, folded exactly as the local
            // runner folds it: the instance's own reference with the
            // best feasible solve of any engine on this problem.
            let best_seen = batches
                .iter()
                .flat_map(|(_, runs)| runs.iter())
                .filter(|s| s.feasible)
                .map(|s| s.objective)
                .fold(f64::INFINITY, f64::min);
            let reference = instance
                .reference_objective(recipe.instance_seed(&key))
                .unwrap_or(f64::INFINITY)
                .min(best_seen);

            let mut cells = Vec::new();
            for (kind, runs) in &batches {
                let scores: Vec<(f64, bool, bool, usize, usize)> = runs
                    .iter()
                    .map(|s: &WireSolution| {
                        (
                            s.objective,
                            s.feasible,
                            s.objective_success(reference),
                            s.iters_to_best as usize,
                            s.iterations as usize,
                        )
                    })
                    .collect();
                total_iterations += scores.iter().map(|s| s.4 as u64).sum::<u64>();
                cells.push(summarize_cell(kind.tag(), &scores));
            }
            problems.push(ProblemSummary {
                problem: key.clone(),
                family: spec.family.tag().to_string(),
                n,
                dim: instance.dim(),
                reference,
                cells,
            });
        }
        let rankings = rank_engines(&problems);
        Ok(StudyResult {
            recipe: recipe.clone(),
            problems,
            rankings,
            wall_seconds: started.elapsed().as_secs_f64(),
            total_iterations,
        })
    }
}
