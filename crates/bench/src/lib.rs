//! Benchmark harness for the HyCiM reproduction: shared utilities for
//! the figure/table regeneration binaries and the criterion benches
//! (see DESIGN.md §4 for the experiment index).
//!
//! The crate has three kinds of targets:
//!
//! * **Report binaries** (`src/bin/fig5_filter_waveforms.rs` …
//!   `table1_summary.rs`, `ablation_report.rs`, `energy_report.rs`) —
//!   each regenerates one figure or table of the paper as text output.
//!   All accept `--key value` flags parsed by [`Args`]; defaults are
//!   shape-preserving reductions of the paper's cluster-scale
//!   protocol (e.g. `fig10_success` defaults to 5 Monte-Carlo initial
//!   states instead of 1000).
//! * **Criterion benches** (`benches/solver_benches.rs`,
//!   `benches/ablation_benches.rs`) — throughput of the hot paths
//!   (filter evaluation, crossbar VMV, SA iterations, COP→QUBO
//!   transformations) and of the ablation variants.
//! * **This library** — the tiny dependency-free CLI parser and
//!   reporting helpers the binaries share, so each `fig*` binary
//!   stays a self-contained experiment script.
//!
//! Run everything from the workspace root:
//!
//! ```text
//! cargo run --release -p hycim-bench --bin fig10_success -- --sweeps 1000
//! cargo bench -p hycim-bench --bench solver_benches
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::env;

/// Minimal `--key value` / `--flag` argument parser for the bench
/// binaries (keeps the harness free of CLI dependencies).
///
/// # Example
///
/// ```
/// use hycim_bench::Args;
/// let args = Args::parse_from(["--instances", "8", "--full"].iter().map(|s| s.to_string()));
/// assert_eq!(args.get_usize("instances", 40), 8);
/// assert!(args.has_flag("full"));
/// assert_eq!(args.get_usize("initials", 20), 20);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process's command-line arguments.
    pub fn parse() -> Self {
        Self::parse_from(env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                continue;
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    values.insert(key.to_string(), iter.next().expect("peeked"));
                }
                _ => flags.push(key.to_string()),
            }
        }
        Self { values, flags }
    }

    /// Integer option with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// u64 option with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// Float option with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number"))
            })
            .unwrap_or(default)
    }

    /// String option with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Comma-separated integer list option with default
    /// (`--sizes 64,256,512`).
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.values.get(key) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{key} expects comma-separated integers"))
                })
                .collect(),
        }
    }

    /// Whether a bare flag was passed.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Schema tag the `hotpath_report` binary stamps into
/// `BENCH_hotpath.json`.
pub const HOTPATH_SCHEMA: &str = "hycim-hotpath/v1";

/// Keys every row of a hotpath report must carry.
pub const HOTPATH_ROW_KEYS: [&str; 9] = [
    "family",
    "state",
    "n",
    "nnz",
    "avg_degree",
    "iterations",
    "dense_iters_per_sec",
    "local_iters_per_sec",
    "speedup",
];

/// Validates the shape of an emitted `BENCH_hotpath.json` document:
/// schema tag, balanced braces/brackets, at least one row, every row
/// carrying every required key, and strictly positive finite
/// throughput numbers. The `hotpath_report` binary re-reads its own
/// output through this check, so CI smoke runs fail loudly on a
/// malformed report.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_hotpath_json(doc: &str) -> Result<(), String> {
    if !doc.trim_start().starts_with('{') {
        return Err("document does not start with an object".into());
    }
    if !doc.contains(&format!("\"schema\": \"{HOTPATH_SCHEMA}\"")) {
        return Err(format!("missing schema tag {HOTPATH_SCHEMA:?}"));
    }
    for (open, close, label) in [('{', '}', "braces"), ('[', ']', "brackets")] {
        let opens = doc.matches(open).count();
        let closes = doc.matches(close).count();
        if opens != closes {
            return Err(format!(
                "unbalanced {label}: {opens} open vs {closes} close"
            ));
        }
    }
    let rows: Vec<&str> = doc
        .split("{ \"family\":")
        .skip(1)
        .map(|r| r.split('}').next().unwrap_or(""))
        .collect();
    if rows.is_empty() {
        return Err("no rows found".into());
    }
    for (idx, row) in rows.iter().enumerate() {
        let row = format!("\"family\":{row}");
        for key in HOTPATH_ROW_KEYS {
            if !row.contains(&format!("\"{key}\":")) {
                return Err(format!("row {idx} missing key {key:?}"));
            }
        }
        for key in ["dense_iters_per_sec", "local_iters_per_sec", "speedup"] {
            let value = row
                .split(&format!("\"{key}\": "))
                .nth(1)
                .and_then(|rest| rest.split([',', ' ', '\n']).next())
                .ok_or_else(|| format!("row {idx}: cannot locate {key:?}"))?;
            let parsed: f64 = value
                .parse()
                .map_err(|_| format!("row {idx}: {key} = {value:?} is not a number"))?;
            if !(parsed.is_finite() && parsed > 0.0) {
                return Err(format!("row {idx}: {key} = {parsed} is not positive"));
            }
        }
    }
    Ok(())
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Minimum and maximum of a slice.
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    xs.iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        })
}

// The `--threads` default of every report binary is the stack-wide
// thread-count knob (`HYCIM_THREADS`, else available parallelism).
pub use hycim_core::default_threads;

/// Renders a sparkline-style ASCII bar for quick terminal plots.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let filled = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_values_and_flags() {
        let args = Args::parse_from(
            ["--a", "3", "--flag", "--b", "2.5"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get_usize("a", 0), 3);
        assert!((args.get_f64("b", 0.0) - 2.5).abs() < 1e-12);
        assert!(args.has_flag("flag"));
        assert!(!args.has_flag("absent"));
        assert_eq!(args.get_u64("absent", 9), 9);
    }

    #[test]
    fn stats() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!(std_dev(&xs) > 1.0 && std_dev(&xs) < 1.2);
        assert_eq!(min_max(&xs), (1.0, 4.0));
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn string_and_list_args() {
        let args = Args::parse_from(
            ["--out", "x.json", "--sizes", "64,256"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get_str("out", "d.json"), "x.json");
        assert_eq!(args.get_str("missing", "d.json"), "d.json");
        assert_eq!(args.get_usize_list("sizes", &[1]), vec![64, 256]);
        assert_eq!(args.get_usize_list("absent", &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn hotpath_validator_accepts_wellformed() {
        let doc = format!(
            "{{\n  \"schema\": \"{HOTPATH_SCHEMA}\",\n  \"rows\": [\n                 {{ \"family\": \"maxcut\", \"state\": \"software\", \"n\": 256, \"nnz\": 10,              \"avg_degree\": 2.0, \"iterations\": 100, \"dense_iters_per_sec\": 1e6,              \"local_iters_per_sec\": 9e6, \"speedup\": 9.0, \"bit_identical\": true }}\n  ]\n}}\n"
        );
        validate_hotpath_json(&doc).expect("valid document");
    }

    #[test]
    fn hotpath_validator_rejects_malformed() {
        assert!(validate_hotpath_json("[]").is_err());
        assert!(validate_hotpath_json("{}").is_err(), "missing schema");
        let no_rows = format!("{{ \"schema\": \"{HOTPATH_SCHEMA}\", \"rows\": [] }}");
        assert!(validate_hotpath_json(&no_rows).is_err(), "no rows");
        let bad_speedup = format!(
            "{{ \"schema\": \"{HOTPATH_SCHEMA}\", \"rows\": [ {{ \"family\": \"m\",              \"state\": \"s\", \"n\": 1, \"nnz\": 1, \"avg_degree\": 1, \"iterations\": 1,              \"dense_iters_per_sec\": 1.0, \"local_iters_per_sec\": 1.0, \"speedup\": -3.0 }} ] }}"
        );
        assert!(
            validate_hotpath_json(&bad_speedup).is_err(),
            "negative speedup"
        );
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
    }
}
