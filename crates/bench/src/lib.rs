//! Benchmark harness for the HyCiM reproduction: shared utilities for
//! the figure/table regeneration binaries and the criterion benches
//! (see DESIGN.md §4 for the experiment index).
//!
//! The crate has three kinds of targets:
//!
//! * **Report binaries** (`src/bin/fig5_filter_waveforms.rs` …
//!   `table1_summary.rs`, `ablation_report.rs`, `energy_report.rs`) —
//!   each regenerates one figure or table of the paper as text output.
//!   All accept `--key value` flags parsed by [`Args`]; defaults are
//!   shape-preserving reductions of the paper's cluster-scale
//!   protocol (e.g. `fig10_success` defaults to 5 Monte-Carlo initial
//!   states instead of 1000).
//! * **Criterion benches** (`benches/solver_benches.rs`,
//!   `benches/ablation_benches.rs`) — throughput of the hot paths
//!   (filter evaluation, crossbar VMV, SA iterations, COP→QUBO
//!   transformations) and of the ablation variants.
//! * **The study subsystem** ([`recipe`], [`study`], [`stats`],
//!   [`gate`]) — declarative [`StudyRecipe`]s expanded by the
//!   [`StudyRunner`] into the replica × problem × engine grid, ranked
//!   per engine, emitted as the committed `BENCH_study.json`
//!   (`study_report` bin) and regression-gated against it
//!   (`bench_gate` bin).
//! * **This library** — the tiny dependency-free CLI parser,
//!   reporting helpers, and `BENCH_*.json` validators ([`check`]) the
//!   binaries share, so each binary stays a self-contained experiment
//!   script.
//!
//! Run everything from the workspace root:
//!
//! ```text
//! cargo run --release -p hycim-bench --bin fig10_success -- --sweeps 1000
//! cargo run --release -p hycim-bench --bin study_report -- --preset default
//! cargo run --release -p hycim-bench --bin bench_gate
//! cargo bench -p hycim-bench --bench solver_benches
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod distributed;
pub mod gate;
pub mod hotpath;
pub mod recipe;
pub mod stats;
pub mod study;

pub use check::{
    parse_hotpath_rows, parse_replica_rows, parse_study_cells, validate_hotpath_json,
    validate_study_json, CommittedCell, ReportMeta, HOTPATH_REPLICA_ROW_KEYS, HOTPATH_ROW_KEYS,
    HOTPATH_SCHEMA, HOTPATH_SCHEMA_V1, HOTPATH_SCHEMA_V2, STUDY_SCHEMA,
};
pub use distributed::DistributedStudyRunner;
pub use recipe::{EngineKind, Family, FamilySpec, RecipeError, StudyRecipe};
pub use stats::{rank_cells, rank_engines, CellSummary, EngineRanking, ProblemSummary};
pub use study::{render_metrics_summary, render_study_json, StudyResult, StudyRunner};

use std::collections::HashMap;
use std::env;

/// Minimal `--key value` / `--flag` argument parser for the bench
/// binaries (keeps the harness free of CLI dependencies).
///
/// # Example
///
/// ```
/// use hycim_bench::Args;
/// let args = Args::parse_from(["--instances", "8", "--full"].iter().map(|s| s.to_string()));
/// assert_eq!(args.get_usize("instances", 40), 8);
/// assert!(args.has_flag("full"));
/// assert_eq!(args.get_usize("initials", 20), 20);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process's command-line arguments.
    pub fn parse() -> Self {
        Self::parse_from(env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                continue;
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    values.insert(key.to_string(), iter.next().expect("peeked"));
                }
                _ => flags.push(key.to_string()),
            }
        }
        Self { values, flags }
    }

    /// Integer option with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// u64 option with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// Float option with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number"))
            })
            .unwrap_or(default)
    }

    /// String option with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Comma-separated integer list option with default
    /// (`--sizes 64,256,512`).
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.values.get(key) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{key} expects comma-separated integers"))
                })
                .collect(),
        }
    }

    /// Whether a bare flag was passed.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Minimum and maximum of a slice.
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    xs.iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        })
}

// The `--threads` default of every report binary is the stack-wide
// thread-count knob (`HYCIM_THREADS`, else available parallelism).
pub use hycim_core::default_threads;

/// Renders a sparkline-style ASCII bar for quick terminal plots.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let filled = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_values_and_flags() {
        let args = Args::parse_from(
            ["--a", "3", "--flag", "--b", "2.5"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get_usize("a", 0), 3);
        assert!((args.get_f64("b", 0.0) - 2.5).abs() < 1e-12);
        assert!(args.has_flag("flag"));
        assert!(!args.has_flag("absent"));
        assert_eq!(args.get_u64("absent", 9), 9);
    }

    #[test]
    fn stats() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!(std_dev(&xs) > 1.0 && std_dev(&xs) < 1.2);
        assert_eq!(min_max(&xs), (1.0, 4.0));
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn string_and_list_args() {
        let args = Args::parse_from(
            ["--out", "x.json", "--sizes", "64,256"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get_str("out", "d.json"), "x.json");
        assert_eq!(args.get_str("missing", "d.json"), "d.json");
        assert_eq!(args.get_usize_list("sizes", &[1]), vec![64, 256]);
        assert_eq!(args.get_usize_list("absent", &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
    }
}
