//! Shape validation of the committed `BENCH_*.json` artifacts plus
//! the provenance `meta` block both report bins stamp.
//!
//! The harness deliberately has no JSON dependency; the artifacts are
//! emitted by string formatting and validated here by string checks —
//! schema tag, balanced delimiters, per-row required keys, and range
//! checks on the numbers the gate later compares. Both `hotpath_report`
//! and `study_report` re-read their own output through these
//! validators before writing, so CI smoke runs fail loudly on a
//! malformed report.

use std::env;

/// Current schema tag of `BENCH_hotpath.json` (v3 = v2 plus the
/// required `replica_rows` packed-vs-scalar throughput block).
pub const HOTPATH_SCHEMA: &str = "hycim-hotpath/v3";

/// The pre-replica-rows hotpath schema tag (v1 plus the required
/// `meta` provenance block), still accepted by the validator and
/// tolerated by the gate.
pub const HOTPATH_SCHEMA_V2: &str = "hycim-hotpath/v2";

/// The pre-provenance hotpath schema tag, still accepted by the
/// validator and tolerated by the gate.
pub const HOTPATH_SCHEMA_V1: &str = "hycim-hotpath/v1";

/// Schema tag of `BENCH_study.json`.
pub const STUDY_SCHEMA: &str = "hycim-study/v1";

/// Keys every row of a hotpath report must carry.
pub const HOTPATH_ROW_KEYS: [&str; 9] = [
    "family",
    "state",
    "n",
    "nnz",
    "avg_degree",
    "iterations",
    "dense_iters_per_sec",
    "local_iters_per_sec",
    "speedup",
];

/// Keys every replica row of a v3 hotpath report must carry.
pub const HOTPATH_REPLICA_ROW_KEYS: [&str; 9] = [
    "lanes",
    "family",
    "n",
    "nnz",
    "avg_degree",
    "sweeps",
    "scalar_iters_per_sec",
    "packed_iters_per_sec",
    "replica_speedup",
];

/// Keys every cell of a study report must carry.
pub const STUDY_CELL_KEYS: [&str; 7] = [
    "engine",
    "success_rate",
    "feasible_rate",
    "best_objective",
    "mean_objective",
    "mean_iters_to_best",
    "iterations",
];

/// Keys every ranking row of a study report must carry.
pub const STUDY_RANKING_KEYS: [&str; 7] = [
    "rank",
    "engine",
    "problems",
    "mean_success_rate",
    "borda",
    "best_count",
    "worst_count",
];

/// Provenance block stamped into every emitted report.
///
/// Populated from the environment so artifact generation stays
/// deterministic and process-spawn-free: `HYCIM_GIT_DESCRIBE` carries
/// the `git describe` string and `SOURCE_DATE_EPOCH` the timestamp;
/// both default to `"unknown"` (the committed artifacts are generated
/// with neither set, keeping them bit-reproducible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportMeta {
    /// Generation timestamp (`SOURCE_DATE_EPOCH` or `"unknown"`).
    pub generated: String,
    /// Git describe string (`HYCIM_GIT_DESCRIBE` or `"unknown"`).
    pub git: String,
}

impl ReportMeta {
    /// Reads the provenance environment variables.
    pub fn from_env() -> Self {
        let clean = |v: Result<String, env::VarError>| {
            v.ok()
                .map(|s| {
                    s.chars()
                        .filter(|c| !c.is_control() && *c != '"' && *c != '\\')
                        .collect::<String>()
                })
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| "unknown".to_string())
        };
        Self {
            generated: clean(env::var("SOURCE_DATE_EPOCH")),
            git: clean(env::var("HYCIM_GIT_DESCRIBE")),
        }
    }

    /// The fully-unknown meta (what committed artifacts carry).
    pub fn unknown() -> Self {
        Self {
            generated: "unknown".into(),
            git: "unknown".into(),
        }
    }

    /// Renders the one-line `"meta": { ... }` JSON fragment (no
    /// trailing comma or newline).
    pub fn render(&self) -> String {
        format!(
            "\"meta\": {{ \"generated\": \"{}\", \"git\": \"{}\" }}",
            self.generated, self.git
        )
    }
}

/// One (problem, engine) cell extracted from a committed study
/// document — the quantities the regression gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedCell {
    /// Canonical instance key.
    pub problem: String,
    /// Engine backend tag.
    pub engine: String,
    /// Committed success rate in `[0, 1]`.
    pub success_rate: f64,
    /// Committed best objective (`None` when recorded as `null`).
    pub best_objective: Option<f64>,
    /// Committed mean objective (`None` when recorded as `null`).
    pub mean_objective: Option<f64>,
}

fn structural_checks(doc: &str) -> Result<(), String> {
    if !doc.trim_start().starts_with('{') {
        return Err("document does not start with an object".into());
    }
    for (open, close, label) in [('{', '}', "braces"), ('[', ']', "brackets")] {
        let opens = doc.matches(open).count();
        let closes = doc.matches(close).count();
        if opens != closes {
            return Err(format!(
                "unbalanced {label}: {opens} open vs {closes} close"
            ));
        }
    }
    Ok(())
}

fn schema_check<'a>(doc: &str, accepted: &[&'a str]) -> Result<&'a str, String> {
    accepted
        .iter()
        .find(|tag| doc.contains(&format!("\"schema\": \"{tag}\"")))
        .copied()
        .ok_or_else(|| format!("missing schema tag (expected one of {accepted:?})"))
}

fn meta_check(doc: &str) -> Result<(), String> {
    let block = doc
        .split("\"meta\": {")
        .nth(1)
        .and_then(|rest| rest.split('}').next())
        .ok_or("missing \"meta\" block")?;
    for key in ["generated", "git"] {
        if !block.contains(&format!("\"{key}\": \"")) {
            return Err(format!("meta block missing key {key:?}"));
        }
    }
    Ok(())
}

/// Splits out every row fragment starting with `marker` (e.g.
/// `{ "family":`), each truncated at its first `}` — sufficient for
/// flat rows.
fn rows<'a>(doc: &'a str, marker: &str) -> Vec<&'a str> {
    doc.split(marker)
        .skip(1)
        .map(|r| r.split('}').next().unwrap_or(""))
        .collect()
}

/// Extracts the raw token following `"key": ` in a fragment.
fn raw_field<'a>(fragment: &'a str, key: &str) -> Result<&'a str, String> {
    fragment
        .split(&format!("\"{key}\": "))
        .nth(1)
        .and_then(|rest| rest.split([',', ' ', '\n', '}', ']']).next())
        .ok_or_else(|| format!("cannot locate {key:?}"))
}

/// Extracts a required finite number.
fn number_field(fragment: &str, key: &str) -> Result<f64, String> {
    let raw = raw_field(fragment, key)?;
    let parsed: f64 = raw
        .parse()
        .map_err(|_| format!("{key} = {raw:?} is not a number"))?;
    if !parsed.is_finite() {
        return Err(format!("{key} = {parsed} is not finite"));
    }
    Ok(parsed)
}

/// Extracts a number that may be recorded as `null` (non-finite
/// values are rendered that way).
fn nullable_number_field(fragment: &str, key: &str) -> Result<Option<f64>, String> {
    let raw = raw_field(fragment, key)?;
    if raw == "null" {
        return Ok(None);
    }
    let parsed: f64 = raw
        .parse()
        .map_err(|_| format!("{key} = {raw:?} is not a number or null"))?;
    Ok(Some(parsed))
}

/// Extracts a quoted string value.
fn string_field(fragment: &str, key: &str) -> Result<String, String> {
    fragment
        .split(&format!("\"{key}\": \""))
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .map(str::to_string)
        .ok_or_else(|| format!("cannot locate string {key:?}"))
}

fn rate_field(fragment: &str, key: &str, label: &str) -> Result<f64, String> {
    let rate = number_field(fragment, key).map_err(|e| format!("{label}: {e}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("{label}: {key} = {rate} not in [0, 1]"));
    }
    Ok(rate)
}

/// Validates the shape of an emitted `BENCH_hotpath.json` document:
/// schema tag (`/v1` or `/v2`; `/v2` additionally requires the `meta`
/// provenance block), balanced braces/brackets, at least one row,
/// every row carrying every required key, and strictly positive finite
/// throughput numbers.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_hotpath_json(doc: &str) -> Result<(), String> {
    structural_checks(doc)?;
    let tag = schema_check(doc, &[HOTPATH_SCHEMA, HOTPATH_SCHEMA_V2, HOTPATH_SCHEMA_V1])?;
    if tag != HOTPATH_SCHEMA_V1 {
        meta_check(doc)?;
    }
    let rows_found = rows(doc, "{ \"family\":");
    if rows_found.is_empty() {
        return Err("no rows found".into());
    }
    for (idx, row) in rows_found.iter().enumerate() {
        let row = format!("\"family\":{row}");
        for key in HOTPATH_ROW_KEYS {
            if !row.contains(&format!("\"{key}\":")) {
                return Err(format!("row {idx} missing key {key:?}"));
            }
        }
        for key in ["dense_iters_per_sec", "local_iters_per_sec", "speedup"] {
            let parsed = number_field(&row, key).map_err(|e| format!("row {idx}: {e}"))?;
            if parsed <= 0.0 {
                return Err(format!("row {idx}: {key} = {parsed} is not positive"));
            }
        }
    }
    if tag == HOTPATH_SCHEMA {
        if !doc.contains("\"replica_rows\":") {
            return Err("v3 document missing \"replica_rows\" block".into());
        }
        for (idx, row) in rows(doc, "{ \"lanes\":").iter().enumerate() {
            let row = format!("\"lanes\":{row}");
            for key in HOTPATH_REPLICA_ROW_KEYS {
                if !row.contains(&format!("\"{key}\":")) {
                    return Err(format!("replica row {idx} missing key {key:?}"));
                }
            }
            for key in [
                "scalar_iters_per_sec",
                "packed_iters_per_sec",
                "replica_speedup",
            ] {
                let parsed =
                    number_field(&row, key).map_err(|e| format!("replica row {idx}: {e}"))?;
                if parsed <= 0.0 {
                    return Err(format!(
                        "replica row {idx}: {key} = {parsed} is not positive"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Validates the shape of an emitted `BENCH_study.json` document:
/// schema tag, required `meta` block, balanced delimiters, at least
/// one problem with at least one cell, every cell and ranking row
/// carrying its required keys, and rates confined to `[0, 1]`.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_study_json(doc: &str) -> Result<(), String> {
    structural_checks(doc)?;
    schema_check(doc, &[STUDY_SCHEMA])?;
    meta_check(doc)?;
    for key in ["study", "seed", "replicas", "sweeps", "engines"] {
        if !doc.contains(&format!("\"{key}\":")) {
            return Err(format!("missing top-level key {key:?}"));
        }
    }
    let problems = rows(doc, "{ \"problem\":");
    if problems.is_empty() {
        return Err("no problems found".into());
    }
    for (idx, header) in problems.iter().enumerate() {
        let header = format!("\"problem\":{header}");
        for key in ["problem", "family", "n", "dim", "reference", "cells"] {
            if !header.contains(&format!("\"{key}\":")) {
                return Err(format!("problem {idx} missing key {key:?}"));
            }
        }
    }
    let cells = rows(doc, "{ \"engine\":");
    if cells.len() < problems.len() {
        return Err(format!(
            "{} problems but only {} cells",
            problems.len(),
            cells.len()
        ));
    }
    for (idx, cell) in cells.iter().enumerate() {
        let cell = format!("\"engine\":{cell}");
        let label = format!("cell {idx}");
        for key in STUDY_CELL_KEYS {
            if !cell.contains(&format!("\"{key}\":")) {
                return Err(format!("{label} missing key {key:?}"));
            }
        }
        rate_field(&cell, "success_rate", &label)?;
        rate_field(&cell, "feasible_rate", &label)?;
        nullable_number_field(&cell, "best_objective").map_err(|e| format!("{label}: {e}"))?;
        nullable_number_field(&cell, "mean_objective").map_err(|e| format!("{label}: {e}"))?;
    }
    let rankings = rows(doc, "{ \"rank\":");
    if rankings.is_empty() {
        return Err("no rankings found".into());
    }
    for (idx, row) in rankings.iter().enumerate() {
        let row = format!("\"rank\":{row}");
        let label = format!("ranking {idx}");
        for key in STUDY_RANKING_KEYS {
            if !row.contains(&format!("\"{key}\":")) {
                return Err(format!("{label} missing key {key:?}"));
            }
        }
        rate_field(&row, "mean_success_rate", &label)?;
    }
    Ok(())
}

/// Extracts every (problem, engine) cell of a study document — the
/// committed side of the gate's comparison. Call
/// [`validate_study_json`] first; this assumes a well-formed document.
///
/// # Errors
///
/// Returns a description of the first cell that cannot be extracted.
pub fn parse_study_cells(doc: &str) -> Result<Vec<CommittedCell>, String> {
    let mut cells = Vec::new();
    for block in doc.split("{ \"problem\":").skip(1) {
        let header = format!("\"problem\":{}", block.split('}').next().unwrap_or(""));
        let problem = string_field(&header, "problem")?;
        // The block runs until the next problem marker, so its cell
        // rows are exactly this problem's.
        for fragment in rows(block, "{ \"engine\":") {
            let fragment = format!("\"engine\":{fragment}");
            cells.push(CommittedCell {
                problem: problem.clone(),
                engine: string_field(&fragment, "engine")?,
                success_rate: rate_field(&fragment, "success_rate", &problem)?,
                best_objective: nullable_number_field(&fragment, "best_objective")
                    .map_err(|e| format!("{problem}: {e}"))?,
                mean_objective: nullable_number_field(&fragment, "mean_objective")
                    .map_err(|e| format!("{problem}: {e}"))?,
            });
        }
    }
    if cells.is_empty() {
        return Err("document contains no cells".into());
    }
    Ok(cells)
}

/// Extracts `(family, n, local_iters_per_sec)` from every row of a
/// hotpath document — the committed side of the throughput-drift
/// check.
///
/// # Errors
///
/// Returns a description of the first row that cannot be extracted.
pub fn parse_hotpath_rows(doc: &str) -> Result<Vec<(String, usize, f64)>, String> {
    let mut out = Vec::new();
    for fragment in rows(doc, "{ \"family\":") {
        let fragment = format!("\"family\":{fragment}");
        let family = string_field(&fragment, "family")?;
        let n = number_field(&fragment, "n")? as usize;
        let ips = number_field(&fragment, "local_iters_per_sec")?;
        out.push((family, n, ips));
    }
    if out.is_empty() {
        return Err("document contains no rows".into());
    }
    Ok(out)
}

/// Extracts `(family, n, sweeps, packed_iters_per_sec)` from every
/// replica row of a hotpath document — the committed side of the
/// replica-throughput drift check. The `sweeps` field lets the drift
/// probe replay the committed row's own run length (throughput is
/// sweep-count dependent: longer runs amortize setup and spend more
/// time in the draw-free cold tail). Pre-v3 documents simply yield an
/// empty list (no replica rows to drift against).
///
/// # Errors
///
/// Returns a description of the first replica row that cannot be
/// extracted.
pub fn parse_replica_rows(doc: &str) -> Result<Vec<(String, usize, usize, f64)>, String> {
    let mut out = Vec::new();
    for fragment in rows(doc, "{ \"lanes\":") {
        let fragment = format!("\"lanes\":{fragment}");
        let family = string_field(&fragment, "family")?;
        let n = number_field(&fragment, "n")? as usize;
        let sweeps = number_field(&fragment, "sweeps")? as usize;
        let ips = number_field(&fragment, "packed_iters_per_sec")?;
        out.push((family, n, sweeps, ips));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hotpath_doc(schema: &str, meta: &str, rows: &str) -> String {
        format!("{{\n  \"schema\": \"{schema}\",\n{meta}  \"rows\": [\n{rows}  ]\n}}\n")
    }

    const GOOD_ROW: &str = "    { \"family\": \"maxcut\", \"state\": \"software\", \"n\": 256, \
         \"nnz\": 10, \"avg_degree\": 2.0, \"iterations\": 100, \"dense_iters_per_sec\": 1e6, \
         \"local_iters_per_sec\": 9e6, \"speedup\": 9.0, \"bit_identical\": true }\n";

    const GOOD_REPLICA_ROW: &str = "    { \"lanes\": 64, \"family\": \"maxcut\", \"n\": 256, \
         \"nnz\": 10, \"avg_degree\": 2.0, \"sweeps\": 60, \"scalar_iters_per_sec\": 8e6, \
         \"packed_iters_per_sec\": 1.2e8, \"replica_speedup\": 15.0, \"bit_identical\": true }\n";

    fn v3_doc(rows: &str, replica_rows: &str) -> String {
        format!(
            "{{\n  \"schema\": \"{HOTPATH_SCHEMA}\",\n  {},\n  \"rows\": [\n{rows}  ],\n  \
             \"replica_rows\": [\n{replica_rows}  ]\n}}\n",
            ReportMeta::unknown().render()
        )
    }

    #[test]
    fn hotpath_validator_accepts_v3_v2_and_legacy_v1() {
        let meta = format!("  {},\n", ReportMeta::unknown().render());
        validate_hotpath_json(&v3_doc(GOOD_ROW, GOOD_REPLICA_ROW)).expect("v3");
        validate_hotpath_json(&hotpath_doc(HOTPATH_SCHEMA_V2, &meta, GOOD_ROW)).expect("v2");
        validate_hotpath_json(&hotpath_doc(HOTPATH_SCHEMA_V1, "", GOOD_ROW)).expect("v1");
    }

    #[test]
    fn hotpath_validator_rejects_malformed() {
        assert!(validate_hotpath_json("[]").is_err());
        assert!(validate_hotpath_json("{}").is_err(), "missing schema");
        let v2_no_meta = hotpath_doc(HOTPATH_SCHEMA_V2, "", GOOD_ROW);
        assert!(
            validate_hotpath_json(&v2_no_meta)
                .unwrap_err()
                .contains("meta"),
            "v2 requires meta"
        );
        let no_rows = hotpath_doc(HOTPATH_SCHEMA_V1, "", "");
        assert!(validate_hotpath_json(&no_rows).is_err(), "no rows");
        let bad = GOOD_ROW.replace("\"speedup\": 9.0", "\"speedup\": -3.0");
        assert!(
            validate_hotpath_json(&hotpath_doc(HOTPATH_SCHEMA_V1, "", &bad)).is_err(),
            "negative speedup"
        );
    }

    #[test]
    fn v3_validator_checks_the_replica_block() {
        // v3 without any replica_rows key is rejected...
        let meta = format!("  {},\n", ReportMeta::unknown().render());
        let missing = hotpath_doc(HOTPATH_SCHEMA, &meta, GOOD_ROW);
        assert!(validate_hotpath_json(&missing)
            .unwrap_err()
            .contains("replica_rows"));
        // ...a present-but-empty block is fine...
        validate_hotpath_json(&v3_doc(GOOD_ROW, "")).expect("empty replica block");
        // ...and malformed replica rows are named.
        let bad_key = GOOD_REPLICA_ROW.replace("\"sweeps\"", "\"swps\"");
        assert!(validate_hotpath_json(&v3_doc(GOOD_ROW, &bad_key))
            .unwrap_err()
            .contains("sweeps"));
        let bad_ips = GOOD_REPLICA_ROW.replace(
            "\"packed_iters_per_sec\": 1.2e8",
            "\"packed_iters_per_sec\": 0.0",
        );
        assert!(validate_hotpath_json(&v3_doc(GOOD_ROW, &bad_ips))
            .unwrap_err()
            .contains("not positive"));
    }

    #[test]
    fn replica_rows_extract_and_tolerate_their_absence() {
        let rows = parse_replica_rows(&v3_doc(GOOD_ROW, GOOD_REPLICA_ROW)).expect("extracts");
        assert_eq!(rows, vec![("maxcut".to_string(), 256, 60, 1.2e8)]);
        // Pre-v3 documents have no replica rows — the parser returns
        // an empty list rather than an error.
        let v1 = hotpath_doc(HOTPATH_SCHEMA_V1, "", GOOD_ROW);
        assert_eq!(parse_replica_rows(&v1).expect("tolerated"), vec![]);
    }

    fn study_doc(cell: &str) -> String {
        format!(
            "{{\n  \"schema\": \"{STUDY_SCHEMA}\",\n  {},\n  \"study\": \"t\", \"seed\": 1, \
             \"replicas\": 2, \"sweeps\": 10,\n  \"engines\": [\"software\"],\n  \"problems\": [\n    \
             {{ \"problem\": \"qkp-d50-n10\", \"family\": \"qkp\", \"n\": 10, \"dim\": 10, \
             \"reference\": -5.0, \"cells\": [\n{cell}    ] }}\n  ],\n  \"rankings\": [\n    \
             {{ \"rank\": 1, \"engine\": \"software\", \"problems\": 1, \
             \"mean_success_rate\": 1.0000, \"borda\": 0, \"best_count\": 1, \"worst_count\": 1 }}\n  \
             ]\n}}\n",
            ReportMeta::unknown().render()
        )
    }

    const GOOD_CELL: &str = "      { \"engine\": \"software\", \"success_rate\": 1.0000, \
         \"feasible_rate\": 1.0000, \"best_objective\": -5.0000, \"mean_objective\": null, \
         \"mean_iters_to_best\": 42.0, \"iterations\": 200 }\n";

    #[test]
    fn study_validator_accepts_wellformed() {
        validate_study_json(&study_doc(GOOD_CELL)).expect("valid study document");
    }

    #[test]
    fn study_validator_rejects_malformed() {
        assert!(validate_study_json("{}").is_err(), "missing schema");
        let doc = study_doc(GOOD_CELL);
        let no_meta = doc.replace("\"meta\"", "\"nope\"");
        assert!(validate_study_json(&no_meta).unwrap_err().contains("meta"));
        let bad_rate = doc.replace("\"success_rate\": 1.0000", "\"success_rate\": 1.5");
        assert!(validate_study_json(&bad_rate)
            .unwrap_err()
            .contains("not in [0, 1]"));
        let missing_key = doc.replace("\"feasible_rate\"", "\"f_rate\"");
        assert!(validate_study_json(&missing_key)
            .unwrap_err()
            .contains("feasible_rate"));
        let no_rankings = doc.replace("\"rank\":", "\"r\":");
        assert!(validate_study_json(&no_rankings)
            .unwrap_err()
            .contains("rankings"));
        let unbalanced = format!("{doc}{{");
        assert!(validate_study_json(&unbalanced)
            .unwrap_err()
            .contains("unbalanced"));
    }

    #[test]
    fn committed_cells_extract_with_null_objectives() {
        let cells = parse_study_cells(&study_doc(GOOD_CELL)).expect("extracts");
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].problem, "qkp-d50-n10");
        assert_eq!(cells[0].engine, "software");
        assert_eq!(cells[0].success_rate, 1.0);
        assert_eq!(cells[0].best_objective, Some(-5.0));
        assert_eq!(cells[0].mean_objective, None);
    }

    #[test]
    fn hotpath_rows_extract() {
        let doc = hotpath_doc(HOTPATH_SCHEMA_V1, "", GOOD_ROW);
        let rows = parse_hotpath_rows(&doc).expect("extracts");
        assert_eq!(rows, vec![("maxcut".to_string(), 256, 9e6)]);
    }

    #[test]
    fn meta_from_env_falls_back_to_unknown() {
        // The test environment does not set the provenance variables.
        if std::env::var("SOURCE_DATE_EPOCH").is_err()
            && std::env::var("HYCIM_GIT_DESCRIBE").is_err()
        {
            assert_eq!(ReportMeta::from_env(), ReportMeta::unknown());
        }
        let rendered = ReportMeta::unknown().render();
        assert!(rendered.starts_with("\"meta\": {"));
        assert!(rendered.contains("\"generated\": \"unknown\""));
    }
}
