//! The study runner: expands a [`StudyRecipe`] into its replica ×
//! problem × engine grid, executes every cell through the
//! deterministic [`BatchRunner`], and folds the results into
//! per-problem summaries plus cross-problem engine rankings.
//!
//! Determinism contract: every value that reaches the summaries (and
//! therefore `BENCH_study.json`) is a pure function of the recipe —
//! instance seeds, solve seeds, and hardware seeds all derive from
//! the study seed and each instance's canonical key, and the
//! [`BatchRunner`] guarantees bit-identical solves at any thread
//! count. Wall-clock telemetry is collected (for stdout reporting)
//! but never rendered into the artifact. Because seeding is keyed and
//! not positional, any sub-recipe — the CI gate — reproduces the
//! exact cells of a superset study.

use hycim_cop::binpack::BinPacking;
use hycim_cop::coloring::GraphColoring;
use hycim_cop::generator::QkpGenerator;
use hycim_cop::knapsack::Knapsack;
use hycim_cop::maxcut::MaxCut;
use hycim_cop::mkp::MkpGenerator;
use hycim_cop::spinglass::SpinGlass;
use hycim_cop::tsp::Tsp;
use std::sync::Arc;

use hycim_cop::{AnyProblem, CopProblem};
use hycim_core::{BatchRunner, Engine, EngineSettings};
use hycim_obs::{ObsRegistry, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::check::ReportMeta;
use crate::check::STUDY_SCHEMA;
use crate::recipe::{EngineKind, Family, FamilySpec, StudyRecipe};
use crate::stats::{rank_engines, summarize_cell, CellSummary, EngineRanking, ProblemSummary};

/// Outcome of one study run: the deterministic summaries plus the
/// (nondeterministic, stdout-only) execution telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyResult {
    /// The recipe that was run.
    pub recipe: StudyRecipe,
    /// Per-problem summaries, in recipe instance order.
    pub problems: Vec<ProblemSummary>,
    /// Cross-problem engine rankings, best-first.
    pub rankings: Vec<EngineRanking>,
    /// Total wall-clock spent inside engine solves, in seconds
    /// (telemetry; never rendered into the JSON artifact).
    pub wall_seconds: f64,
    /// Total annealing iterations across all cells (deterministic).
    pub total_iterations: u64,
}

impl StudyResult {
    /// Number of (problem, engine) cells the study ran.
    pub fn cells(&self) -> usize {
        self.problems.iter().map(|p| p.cells.len()).sum()
    }

    /// Flattens to `(instance key, cell)` pairs — the fresh side of
    /// the regression gate's comparison.
    pub fn fresh_cells(&self) -> Vec<(String, CellSummary)> {
        self.problems
            .iter()
            .flat_map(|p| p.cells.iter().map(|c| (p.problem.clone(), c.clone())))
            .collect()
    }
}

/// Executes [`StudyRecipe`]s over the engine matrix.
#[derive(Debug, Clone)]
pub struct StudyRunner {
    runner: BatchRunner,
}

impl StudyRunner {
    /// A runner using the stack-wide default thread count.
    pub fn new() -> Self {
        Self {
            runner: BatchRunner::new(),
        }
    }

    /// Overrides the worker-thread count (the summaries are
    /// bit-identical regardless — this only changes wall-clock).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.runner = self.runner.with_threads(threads);
        self
    }

    /// Routes per-cell execution counters into a metrics registry:
    /// `batch.cells` / `batch.iterations` / `batch.cell_iterations`
    /// (deterministic) and `timing.batch.cell_seconds` (wall-clock,
    /// quarantined in the snapshot's `timing.` section). This replaces
    /// the old stdout-only telemetry path — render the snapshot with
    /// [`render_metrics_summary`] when a human report is wanted.
    pub fn with_obs(mut self, obs: Arc<ObsRegistry>) -> Self {
        self.runner = self.runner.with_obs(obs);
        self
    }

    /// Runs the full grid of a recipe.
    ///
    /// # Errors
    ///
    /// Returns a message naming the instance and engine if any cell of
    /// the grid cannot be constructed (a family that does not map onto
    /// a requested backend).
    pub fn run(&self, recipe: &StudyRecipe) -> Result<StudyResult, String> {
        let mut problems = Vec::new();
        let mut wall_seconds = 0.0;
        let mut total_iterations = 0u64;
        for (spec, n, key) in recipe.instances() {
            let instance = build_instance(&spec, n, &key, recipe)?;
            let (summary, wall, iters) = match &instance {
                AnyProblem::Qkp(p) => run_instance(p, &spec, n, &key, recipe, &self.runner),
                AnyProblem::Knapsack(p) => run_instance(p, &spec, n, &key, recipe, &self.runner),
                AnyProblem::MaxCut(p) => run_instance(p, &spec, n, &key, recipe, &self.runner),
                AnyProblem::SpinGlass(p) => run_instance(p, &spec, n, &key, recipe, &self.runner),
                AnyProblem::Tsp(p) => run_instance(p, &spec, n, &key, recipe, &self.runner),
                AnyProblem::Coloring(p) => run_instance(p, &spec, n, &key, recipe, &self.runner),
                AnyProblem::BinPack(p) => run_instance(p, &spec, n, &key, recipe, &self.runner),
                AnyProblem::Mkp(p) => run_instance(p, &spec, n, &key, recipe, &self.runner),
            }?;
            wall_seconds += wall;
            total_iterations += iters;
            problems.push(summary);
        }
        let rankings = rank_engines(&problems);
        Ok(StudyResult {
            recipe: recipe.clone(),
            problems,
            rankings,
            wall_seconds,
            total_iterations,
        })
    }
}

impl Default for StudyRunner {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds the engine column for one problem instance: the shared
/// [`EngineKind::build`] constructor with the recipe's instance-keyed
/// hardware seed, wrapping failures with study context. Using the
/// same constructor as the wire workers is what keeps distributed
/// study runs bit-identical to local ones.
fn build_engine<P: CopProblem + 'static>(
    kind: EngineKind,
    problem: &P,
    key: &str,
    recipe: &StudyRecipe,
) -> Result<Box<dyn Engine<P>>, String> {
    kind.build(
        problem,
        &EngineSettings::new(recipe.sweeps, recipe.hardware_seed(key)),
    )
    .map_err(|e| format!("{key} does not run on {}: {e}", kind.tag()))
}

fn run_instance<P: CopProblem + 'static>(
    problem: &P,
    spec: &FamilySpec,
    n: usize,
    key: &str,
    recipe: &StudyRecipe,
    runner: &BatchRunner,
) -> Result<(ProblemSummary, f64, u64), String> {
    let mut batches = Vec::new();
    for &kind in &recipe.engines {
        let engine = build_engine(kind, problem, key, recipe)?;
        let runs = runner.run_telemetry(&engine, recipe.replicas, recipe.solve_seed(key));
        batches.push((kind, runs));
    }

    // Problem-local reference: the instance's exact/heuristic
    // reference folded with the best feasible solve of any engine on
    // this problem — never values from other problems, so recipe
    // subsetting cannot shift it.
    let best_seen = batches
        .iter()
        .flat_map(|(_, runs)| runs.iter())
        .filter(|(s, _)| s.feasible)
        .map(|(s, _)| s.objective)
        .fold(f64::INFINITY, f64::min);
    let reference = problem
        .reference_objective(recipe.instance_seed(key))
        .unwrap_or(f64::INFINITY)
        .min(best_seen);

    let mut wall = 0.0;
    let mut iterations = 0u64;
    let mut cells = Vec::new();
    for (kind, runs) in &batches {
        let scores: Vec<(f64, bool, bool, usize, usize)> = runs
            .iter()
            .map(|(s, t)| {
                (
                    s.objective,
                    s.feasible,
                    s.objective_success(reference),
                    s.trace.iters_to_best(),
                    t.iterations,
                )
            })
            .collect();
        wall += runs.iter().map(|(_, t)| t.wall_seconds).sum::<f64>();
        iterations += scores.iter().map(|s| s.4 as u64).sum::<u64>();
        cells.push(summarize_cell(kind.tag(), &scores));
    }
    let summary = ProblemSummary {
        problem: key.to_string(),
        family: spec.family.tag().to_string(),
        n,
        dim: problem.dim(),
        reference,
        cells,
    };
    Ok((summary, wall, iterations))
}

/// Generates the instance of one recipe cell, type-erased — the ONE
/// construction path shared by the local [`StudyRunner`] and the
/// distributed runner, so both score the exact same instances.
pub(crate) fn build_instance(
    spec: &FamilySpec,
    n: usize,
    key: &str,
    recipe: &StudyRecipe,
) -> Result<AnyProblem, String> {
    let iseed = recipe.instance_seed(key);
    Ok(match spec.family {
        Family::Qkp { density_pct } => {
            AnyProblem::from(QkpGenerator::new(n, density_pct as f64 / 100.0).generate(iseed))
        }
        Family::Knapsack => AnyProblem::from(random_knapsack(n, iseed)),
        Family::MaxCut { density_pct } => {
            AnyProblem::from(MaxCut::random(n, density_pct as f64 / 100.0, iseed))
        }
        Family::SpinGlass => {
            AnyProblem::from(SpinGlass::random_binary(n, iseed).map_err(|e| format!("{key}: {e}"))?)
        }
        Family::Tsp => AnyProblem::from(
            Tsp::random_euclidean(n, 10.0, iseed).map_err(|e| format!("{key}: {e}"))?,
        ),
        Family::Coloring { colors } => {
            AnyProblem::from(GraphColoring::random(n, 0.3, colors as usize, iseed))
        }
        Family::BinPack { bins } => AnyProblem::from(random_bin_packing(n, bins as usize, iseed)),
        Family::Mkp { dims } => {
            AnyProblem::from(MkpGenerator::new(n, dims as usize).generate(iseed))
        }
    })
}

/// A seeded linear knapsack: weights comfortably below the filter's
/// 64-unit column budget, capacity around half the total weight.
fn random_knapsack(items: usize, seed: u64) -> Knapsack {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<u64> = (0..items).map(|_| rng.random_range(1..=30)).collect();
    let profits: Vec<u64> = (0..items).map(|_| rng.random_range(1..=60)).collect();
    let max_w = weights.iter().copied().max().unwrap_or(1);
    let capacity = (weights.iter().sum::<u64>() / 2).max(max_w);
    Knapsack::new(profits, weights, capacity).expect("valid knapsack")
}

/// A seeded packable bin-packing instance (~80% fill; retries until
/// first-fit-decreasing succeeds so every instance is solvable).
fn random_bin_packing(items: usize, bins: usize, seed: u64) -> BinPacking {
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let sizes: Vec<u64> = (0..items).map(|_| rng.random_range(2..=9)).collect();
        let total: u64 = sizes.iter().sum();
        let capacity = (total * 5 / 4 / bins as u64).max(9);
        let bp = BinPacking::new(sizes, capacity, bins).expect("valid sizes");
        if bp.first_fit_decreasing().is_some() {
            return bp;
        }
    }
}

/// Formats a number with fixed decimals, rendering non-finite values
/// as JSON `null` (infinite objectives mean "no finite result").
fn fmt_num(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        "null".to_string()
    }
}

/// The opt-in human formatter for a study's execution metrics — the
/// successor of the old unconditional stdout telemetry print. Binaries
/// call it only when not `--quiet`, so machine-read output never
/// interleaves with telemetry. Nothing rendered here enters any
/// artifact: the grid totals are deterministic, the trailing
/// `-- timing --` section is wall-clock.
pub fn render_metrics_summary(result: &StudyResult, snapshot: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("-- metrics (stdout only, never in the artifact) --\n");
    out.push_str(&format!(
        "cells {}  iterations {}  solve wall-clock {:.2}s\n",
        result.cells(),
        result.total_iterations,
        result.wall_seconds
    ));
    out.push_str(&snapshot.render());
    out
}

/// Renders the `BENCH_study.json` document for a study result.
///
/// Every rendered value is deterministic (fixed decimal formatting,
/// no wall-clock), so the document is bit-identical across thread
/// counts and machines for the same recipe.
pub fn render_study_json(result: &StudyResult, meta: &ReportMeta) -> String {
    let r = &result.recipe;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{STUDY_SCHEMA}\",\n"));
    out.push_str("  \"bin\": \"study_report\",\n");
    out.push_str(&format!("  {},\n", meta.render()));
    out.push_str(&format!(
        "  \"study\": \"{}\", \"seed\": {}, \"replicas\": {}, \"sweeps\": {},\n",
        r.name, r.seed, r.replicas, r.sweeps
    ));
    let engines: Vec<String> = r.engines.iter().map(|e| format!("\"{e}\"")).collect();
    out.push_str(&format!("  \"engines\": [{}],\n", engines.join(", ")));
    out.push_str("  \"problems\": [\n");
    for (i, p) in result.problems.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"problem\": \"{}\", \"family\": \"{}\", \"n\": {}, \"dim\": {}, \
             \"reference\": {}, \"cells\": [\n",
            p.problem,
            p.family,
            p.n,
            p.dim,
            fmt_num(p.reference, 4)
        ));
        for (j, c) in p.cells.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"engine\": \"{}\", \"success_rate\": {}, \"feasible_rate\": {}, \
                 \"best_objective\": {}, \"mean_objective\": {}, \"mean_iters_to_best\": {}, \
                 \"iterations\": {} }}{}\n",
                c.engine,
                fmt_num(c.success_rate, 4),
                fmt_num(c.feasible_rate, 4),
                fmt_num(c.best_objective, 4),
                fmt_num(c.mean_objective, 4),
                fmt_num(c.mean_iters_to_best, 1),
                c.iterations,
                if j + 1 < p.cells.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ] }}{}\n",
            if i + 1 < result.problems.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"rankings\": [\n");
    for (i, row) in result.rankings.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"rank\": {}, \"engine\": \"{}\", \"problems\": {}, \
             \"mean_success_rate\": {}, \"borda\": {}, \"best_count\": {}, \
             \"worst_count\": {} }}{}\n",
            i + 1,
            row.engine,
            row.problems,
            fmt_num(row.mean_success_rate, 4),
            row.borda,
            row.best_count,
            row.worst_count,
            if i + 1 < result.rankings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::validate_study_json;

    #[test]
    fn tiny_study_runs_and_renders_valid_json() {
        let recipe = StudyRecipe::parse(
            "study tiny\nseed 5\nreplicas 2\nsweeps 30\nengines software,hycim\n\
             problem qkp sizes=8 density=50\nproblem maxcut sizes=6 density=50\n",
        )
        .unwrap();
        let result = StudyRunner::new().with_threads(2).run(&recipe).unwrap();
        assert_eq!(result.problems.len(), 2);
        assert_eq!(result.cells(), 4);
        assert_eq!(result.rankings.len(), 2);
        assert!(result.total_iterations > 0);
        assert!(result.wall_seconds > 0.0);
        for p in &result.problems {
            assert!(p.reference.is_finite(), "{}: reference folded", p.problem);
            for c in &p.cells {
                assert!((0.0..=1.0).contains(&c.success_rate));
                assert!((0.0..=1.0).contains(&c.feasible_rate));
            }
        }
        let doc = render_study_json(&result, &ReportMeta::unknown());
        validate_study_json(&doc).expect("rendered document validates");
        // Telemetry never leaks into the artifact.
        assert!(!doc.contains("wall"));
    }

    #[test]
    fn study_runs_feed_the_obs_registry_and_the_summary_formatter() {
        let recipe = StudyRecipe::parse(
            "study tiny\nseed 5\nreplicas 2\nsweeps 30\nengines software\n\
             problem qkp sizes=8 density=50\n",
        )
        .unwrap();
        let obs = Arc::new(ObsRegistry::new());
        let result = StudyRunner::new()
            .with_obs(Arc::clone(&obs))
            .with_threads(2) // must preserve the registry
            .run(&recipe)
            .unwrap();
        let snapshot = obs.snapshot();
        assert_eq!(snapshot.counter("batch.cells"), Some(2));
        assert_eq!(
            snapshot.counter("batch.iterations"),
            Some(result.total_iterations)
        );
        assert_eq!(
            snapshot
                .histogram("timing.batch.cell_seconds")
                .map(|h| h.count()),
            Some(2)
        );
        let summary = render_metrics_summary(&result, &snapshot);
        assert!(summary.contains("-- metrics"));
        assert!(summary.contains("batch.cells 2"));
        assert!(summary.contains("-- timing --"));
    }

    #[test]
    fn unknown_family_backend_combinations_surface_as_errors() {
        // Every preset family maps onto every preset backend, so
        // errors only come from construction failures; exercise the
        // error path via a spin glass too small for the generator.
        let recipe = StudyRecipe::parse(
            "study t\nseed 1\nreplicas 1\nsweeps 5\nengines software\n\
             problem spinglass sizes=2\n",
        )
        .unwrap();
        // n=2 is valid for the generator; this must simply run.
        assert!(StudyRunner::new().with_threads(1).run(&recipe).is_ok());
    }

    #[test]
    fn iters_to_best_reads_the_trace() {
        let recipe = StudyRecipe::parse(
            "study t\nseed 2\nreplicas 2\nsweeps 40\nengines software\n\
             problem qkp sizes=8 density=50\n",
        )
        .unwrap();
        let result = StudyRunner::new().with_threads(1).run(&recipe).unwrap();
        let cell = &result.problems[0].cells[0];
        // The mean first-touch index is within the executed budget.
        let per_replica = cell.iterations as f64 / recipe.replicas as f64;
        assert!(cell.mean_iters_to_best >= 0.0);
        assert!(cell.mean_iters_to_best <= per_replica + 1.0);
    }
}
